#include "syneval/sync/semaphore.h"

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/instrument.h"

namespace syneval {

namespace {

// Renames a wrapper's inner mutex/condvar after the wrapper itself, so detector
// wait-for edges and postmortem cycles read "CountingSemaphore#4.mu (acquired at
// seq …)" instead of the anonymous "mutex#7" CreateMutex assigned. The wrapper name
// is already unique, so the derived bases never collide.
void NameInnerPrimitives(Runtime& runtime, AnomalyDetector* det, const void* self,
                         const char* base, RtMutex* mu, RtCondVar* cv) {
  if (det != nullptr) {
    const std::string name = det->RegisterResource(self, ResourceKind::kSemaphore, base);
    det->RegisterResource(mu, ResourceKind::kLock, name + ".mu");
    det->RegisterResource(cv, ResourceKind::kCondition, name + ".cv");
  }
  if (FlightRecorder* flight = runtime.flight_recorder()) {
    const std::string name = flight->RegisterName(self, base);
    flight->RegisterName(mu, name + ".mu");
    flight->RegisterName(cv, name + ".cv");
  }
}

}  // namespace

CountingSemaphore::CountingSemaphore(Runtime& runtime, std::int64_t initial)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "semaphore")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      count_(initial) {
  NameInnerPrimitives(runtime, det_, this, "CountingSemaphore", mu_.get(), cv_.get());
}

void CountingSemaphore::P() { P(nullptr); }

void CountingSemaphore::P(const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  const bool will_block = count_ == 0;
  const std::uint32_t tid = runtime_.CurrentThreadId();
  const std::uint64_t wait_start = will_block ? TelemetryNow(tel_, runtime_) : 0;
  if (tel_ != nullptr && will_block) {
    tel_->queue_depth.Set(++waiting_);
  }
  if (det_ != nullptr && will_block) {
    det_->OnBlock(tid, this);
  }
  if (recovery_ != nullptr) {
    RecoveringWait(
        *cv_, *mu_, [this] { return count_ != 0; }, recovery_policy_, recovery_,
        [this] {
          if (tel_ != nullptr) {
            tel_->wakeups.Add(1);
          }
        });
  } else {
    while (count_ == 0) {
      cv_->Wait(*mu_);
      if (tel_ != nullptr) {
        tel_->wakeups.Add(1);
      }
    }
  }
  if (det_ != nullptr && will_block) {
    det_->OnWake(tid, this);
  }
  --count_;
  if (det_ != nullptr) {
    det_->OnAcquire(tid, this);
  }
  if (tel_ != nullptr) {
    const std::uint64_t now = runtime_.NowNanos();
    tel_->wait.Record(will_block ? TelemetryElapsed(wait_start, now) : 0);
    tel_->admissions.Add(1);
    hold_starts_.push_back(now);
    if (will_block) {
      tel_->queue_depth.Set(--waiting_);
    }
  }
  if (on_acquire) {
    on_acquire();
  }
}

void CountingSemaphore::V() { V(nullptr); }

void CountingSemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(runtime_.CurrentThreadId(), this);
  }
  if (tel_ != nullptr) {
    tel_->signals.Add(1);
    if (!hold_starts_.empty()) {
      // FIFO unit retirement: the oldest outstanding acquisition ends here.
      tel_->hold.Record(TelemetryElapsed(hold_starts_.front(), runtime_.NowNanos()));
      hold_starts_.pop_front();
    }
  }
  ++count_;
  cv_->NotifyOne();
}

bool CountingSemaphore::TryP() {
  RtLock lock(*mu_);
  if (count_ == 0) {
    return false;
  }
  --count_;
  if (det_ != nullptr) {
    det_->OnAcquire(runtime_.CurrentThreadId(), this);
  }
  if (tel_ != nullptr) {
    tel_->wait.Record(0);
    tel_->admissions.Add(1);
    hold_starts_.push_back(runtime_.NowNanos());
  }
  return true;
}

std::int64_t CountingSemaphore::value() const {
  RtLock lock(*mu_);
  return count_;
}

void CountingSemaphore::EnableRecovery(RecoveryStats* stats, RecoveryPolicy policy) {
  RtLock lock(*mu_);
  recovery_ = stats;
  recovery_policy_ = policy;
}

BinarySemaphore::BinarySemaphore(Runtime& runtime, bool initially_open)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "semaphore")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      open_(initially_open) {
  NameInnerPrimitives(runtime, det_, this, "BinarySemaphore", mu_.get(), cv_.get());
}

void BinarySemaphore::P() { P(nullptr); }

void BinarySemaphore::P(const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  const bool will_block = !open_;
  const std::uint32_t tid = runtime_.CurrentThreadId();
  const std::uint64_t wait_start = will_block ? TelemetryNow(tel_, runtime_) : 0;
  if (tel_ != nullptr && will_block) {
    tel_->queue_depth.Set(++waiting_);
  }
  if (det_ != nullptr && will_block) {
    det_->OnBlock(tid, this);
  }
  if (recovery_ != nullptr) {
    RecoveringWait(
        *cv_, *mu_, [this] { return open_; }, recovery_policy_, recovery_,
        [this] {
          if (tel_ != nullptr) {
            tel_->wakeups.Add(1);
          }
        });
  } else {
    while (!open_) {
      cv_->Wait(*mu_);
      if (tel_ != nullptr) {
        tel_->wakeups.Add(1);
      }
    }
  }
  if (det_ != nullptr && will_block) {
    det_->OnWake(tid, this);
  }
  open_ = false;
  if (det_ != nullptr) {
    det_->OnAcquire(tid, this);
  }
  if (tel_ != nullptr) {
    const std::uint64_t now = runtime_.NowNanos();
    tel_->wait.Record(will_block ? TelemetryElapsed(wait_start, now) : 0);
    tel_->admissions.Add(1);
    hold_start_ = now;
    if (will_block) {
      tel_->queue_depth.Set(--waiting_);
    }
  }
  if (on_acquire) {
    on_acquire();
  }
}

void BinarySemaphore::V() { V(nullptr); }

void BinarySemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(runtime_.CurrentThreadId(), this);
  }
  if (tel_ != nullptr) {
    tel_->signals.Add(1);
    if (hold_start_ != 0) {
      tel_->hold.Record(TelemetryElapsed(hold_start_, runtime_.NowNanos()));
      hold_start_ = 0;
    }
  }
  open_ = true;
  cv_->NotifyOne();
}

bool BinarySemaphore::TryP() {
  RtLock lock(*mu_);
  if (!open_) {
    return false;
  }
  open_ = false;
  if (det_ != nullptr) {
    det_->OnAcquire(runtime_.CurrentThreadId(), this);
  }
  if (tel_ != nullptr) {
    tel_->wait.Record(0);
    tel_->admissions.Add(1);
    hold_start_ = runtime_.NowNanos();
  }
  return true;
}

void BinarySemaphore::EnableRecovery(RecoveryStats* stats, RecoveryPolicy policy) {
  RtLock lock(*mu_);
  recovery_ = stats;
  recovery_policy_ = policy;
}

FifoSemaphore::FifoSemaphore(Runtime& runtime, std::int64_t initial)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "semaphore")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      count_(initial) {
  NameInnerPrimitives(runtime, det_, this, "FifoSemaphore", mu_.get(), cv_.get());
}

void FifoSemaphore::P() { P(nullptr, nullptr); }

void FifoSemaphore::P(const std::function<void()>& on_acquire) { P(nullptr, on_acquire); }

void FifoSemaphore::P(const std::function<void()>& on_arrive,
                      const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (on_arrive) {
    on_arrive();
  }
  if (count_ > 0 && queue_.empty()) {
    --count_;
    if (det_ != nullptr) {
      det_->OnAcquire(tid, this);
    }
    if (tel_ != nullptr) {
      tel_->wait.Record(0);
      tel_->admissions.Add(1);
      hold_starts_.push_back(runtime_.NowNanos());
    }
    if (on_acquire) {
      on_acquire();
    }
    return;
  }
  Waiter self;
  self.thread = tid;
  self.on_acquire = on_acquire;
  self.wait_start = TelemetryNow(tel_, runtime_);
  queue_.push_back(&self);
  if (tel_ != nullptr) {
    tel_->queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
  }
  if (det_ != nullptr) {
    det_->OnBlock(tid, this);
  }
  while (!self.granted) {
    cv_->Wait(*mu_);
    if (tel_ != nullptr) {
      tel_->wakeups.Add(1);
    }
  }
  if (det_ != nullptr) {
    det_->OnWake(tid, this);
  }
}

void FifoSemaphore::V() { V(nullptr); }

void FifoSemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(runtime_.CurrentThreadId(), this);
  }
  if (tel_ != nullptr) {
    tel_->signals.Add(1);
    if (!hold_starts_.empty()) {
      tel_->hold.Record(TelemetryElapsed(hold_starts_.front(), runtime_.NowNanos()));
      hold_starts_.pop_front();
    }
  }
  if (!queue_.empty()) {
    // Hand the unit directly to the longest waiter; the count never becomes visible.
    Waiter* head = queue_.front();
    queue_.pop_front();
    if (det_ != nullptr) {
      det_->OnAcquire(head->thread, this);
    }
    if (tel_ != nullptr) {
      const std::uint64_t now = runtime_.NowNanos();
      tel_->wait.Record(TelemetryElapsed(head->wait_start, now));
      tel_->admissions.Add(1);
      hold_starts_.push_back(now);
      tel_->queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
    }
    if (head->on_acquire) {
      head->on_acquire();
    }
    head->granted = true;
    cv_->NotifyAll();
  } else {
    ++count_;
  }
}

std::int64_t FifoSemaphore::value() const {
  RtLock lock(*mu_);
  return count_;
}

int FifoSemaphore::waiters() const {
  RtLock lock(*mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace syneval
