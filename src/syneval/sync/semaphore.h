// Semaphores: the low-level baseline mechanism.
//
// Section 1 of the paper frames every high-level construct as an attempt to improve on
// semaphores ("the need for a mechanism that is higher level than semaphores, and easier
// to use, is widely recognized"). The baseline column of every evaluation matrix in this
// repository is therefore implemented with these primitives, following Dijkstra's
// "Cooperating Sequential Processes" P/V discipline.
//
// Two wakeup disciplines are provided because several canonical problems depend on it:
//   * CountingSemaphore — wakeup order unspecified (whatever the runtime schedule does);
//     this is the classic weak semaphore.
//   * FifoSemaphore — strict first-blocked-first-granted order; a "strong" semaphore,
//     needed to express request-time (FCFS) constraints with semaphores at all.

#ifndef SYNEVAL_SYNC_SEMAPHORE_H_
#define SYNEVAL_SYNC_SEMAPHORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "syneval/fault/recovery.h"
#include "syneval/runtime/runtime.h"

namespace syneval {

// Weak counting semaphore. P() blocks while the count is zero; V() increments and wakes
// some waiter. Wakeup order among blocked threads is unspecified.
class CountingSemaphore {
 public:
  CountingSemaphore(Runtime& runtime, std::int64_t initial);

  CountingSemaphore(const CountingSemaphore&) = delete;
  CountingSemaphore& operator=(const CountingSemaphore&) = delete;

  // Dijkstra's P (wait/down): blocks until the count is positive, then decrements.
  void P();

  // P with a trace hook executed under the semaphore's internal lock at the decrement
  // instant — the race-free way to record an admission whose gate is this semaphore
  // (see the instrumentation contract in trace/recorder.h).
  void P(const std::function<void()>& on_acquire);

  // Dijkstra's V (signal/up): increments the count and wakes a waiter if any.
  void V();

  // V with a trace hook executed under the internal lock just before the increment
  // (records a release before any competitor can be admitted by it).
  void V(const std::function<void()>& on_release);

  // Non-blocking P: returns false instead of blocking when the count is zero.
  bool TryP();

  // Current count (racy snapshot; intended for diagnostics and tests).
  std::int64_t value() const;

  // Opts this semaphore into the recovery layer (syneval/fault/recovery.h): blocked
  // P() calls use RecoveringWait under `policy` instead of an untimed wait, so a lost
  // V cannot strand them, with rescues accounted in `stats`. Pass nullptr to opt back
  // out. Not thread-safe against concurrent P/V; call before the workload starts.
  void EnableRecovery(RecoveryStats* stats, RecoveryPolicy policy = {});

 private:
  Runtime& runtime_;
  AnomalyDetector* det_ = nullptr;  // From runtime.anomaly_detector(); may be null.
  MechanismStats* tel_ = nullptr;   // Shared "semaphore" bundle; null when not attached.
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  std::int64_t count_;
  RecoveryStats* recovery_ = nullptr;  // Null until EnableRecovery.
  RecoveryPolicy recovery_policy_;
  int waiting_ = 0;  // Blocked P() calls (telemetry queue depth). Guarded by mu_.
  // Acquire times of outstanding units, FIFO-retired at V like the anomaly detector's
  // holder model: hold time of a unit is measured oldest-acquire to next-release.
  std::deque<std::uint64_t> hold_starts_;
};

// Binary semaphore (mutex-style usage, but V from a different thread is allowed, which a
// mutex forbids). Count is clamped to {0, 1}: V on an open semaphore stays 1.
class BinarySemaphore {
 public:
  BinarySemaphore(Runtime& runtime, bool initially_open);

  void P();
  // Hook semantics as for CountingSemaphore: run under the internal lock at the
  // acquire/release instant.
  void P(const std::function<void()>& on_acquire);
  void V();
  void V(const std::function<void()>& on_release);
  bool TryP();

  // As CountingSemaphore::EnableRecovery.
  void EnableRecovery(RecoveryStats* stats, RecoveryPolicy policy = {});

 private:
  Runtime& runtime_;
  AnomalyDetector* det_ = nullptr;  // From runtime.anomaly_detector(); may be null.
  MechanismStats* tel_ = nullptr;   // Shared "semaphore" bundle; null when not attached.
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  bool open_;
  RecoveryStats* recovery_ = nullptr;  // Null until EnableRecovery.
  RecoveryPolicy recovery_policy_;
  int waiting_ = 0;             // Blocked P() calls (telemetry). Guarded by mu_.
  std::uint64_t hold_start_ = 0;  // NowNanos of the outstanding P (telemetry).
};

// Strong semaphore: blocked threads are granted the semaphore in the exact order their
// P() calls blocked. This is the building block for expressing request-time information
// (first-come-first-served constraints) in the semaphore baseline.
class FifoSemaphore {
 public:
  FifoSemaphore(Runtime& runtime, std::int64_t initial);

  void P();
  // `on_acquire` runs under the internal lock at the instant the unit is granted; for a
  // blocked P it runs in the *granting* (V-calling) thread. `on_arrive` runs under the
  // internal lock when the request joins the queue (or is granted immediately).
  void P(const std::function<void()>& on_acquire);
  void P(const std::function<void()>& on_arrive, const std::function<void()>& on_acquire);
  void V();
  void V(const std::function<void()>& on_release);

  std::int64_t value() const;
  int waiters() const;

 private:
  struct Waiter {
    bool granted = false;
    std::uint32_t thread = 0;
    std::function<void()> on_acquire;
    std::uint64_t wait_start = 0;  // NowNanos when the wait began (telemetry).
  };

  Runtime& runtime_;
  AnomalyDetector* det_ = nullptr;  // From runtime.anomaly_detector(); may be null.
  MechanismStats* tel_ = nullptr;   // Shared "semaphore" bundle; null when not attached.
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  std::int64_t count_;
  std::deque<Waiter*> queue_;
  std::deque<std::uint64_t> hold_starts_;  // FIFO-retired unit tenures (telemetry).
};

}  // namespace syneval

#endif  // SYNEVAL_SYNC_SEMAPHORE_H_
