#include "syneval/sync/primitives.h"

namespace syneval {

Latch::Latch(Runtime& runtime, int count)
    : mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()), count_(count) {}

void Latch::CountDown() {
  RtLock lock(*mu_);
  if (count_ > 0 && --count_ == 0) {
    cv_->NotifyAll();
  }
}

void Latch::Wait() {
  RtLock lock(*mu_);
  while (count_ > 0) {
    cv_->Wait(*mu_);
  }
}

Barrier::Barrier(Runtime& runtime, int parties)
    : mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()), parties_(parties) {}

void Barrier::Arrive() {
  RtLock lock(*mu_);
  const std::uint64_t generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_->NotifyAll();
    return;
  }
  while (generation_ == generation) {
    cv_->Wait(*mu_);
  }
}

EventCount::EventCount(Runtime& runtime)
    : mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()) {}

std::uint64_t EventCount::Advance() {
  RtLock lock(*mu_);
  ++count_;
  cv_->NotifyAll();
  return count_;
}

void EventCount::Await(std::uint64_t value) {
  RtLock lock(*mu_);
  while (count_ < value) {
    cv_->Wait(*mu_);
  }
}

std::uint64_t EventCount::Read() const {
  RtLock lock(*mu_);
  return count_;
}

}  // namespace syneval
