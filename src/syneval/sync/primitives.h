// Auxiliary coordination primitives used by workloads and baseline solutions:
// Latch (one-shot countdown), Barrier (cyclic rendezvous), and EventCount
// (Reed/Kanodia-style advance/await counter, used by tick-driven baseline solutions).

#ifndef SYNEVAL_SYNC_PRIMITIVES_H_
#define SYNEVAL_SYNC_PRIMITIVES_H_

#include <cstdint>
#include <memory>

#include "syneval/runtime/runtime.h"

namespace syneval {

// One-shot countdown latch: CountDown() decrements, Wait() blocks until zero.
class Latch {
 public:
  Latch(Runtime& runtime, int count);

  void CountDown();
  void Wait();

 private:
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  int count_;
};

// Cyclic barrier for `parties` threads; Arrive() blocks until all parties arrive, then
// releases the generation and resets.
class Barrier {
 public:
  Barrier(Runtime& runtime, int parties);

  void Arrive();

 private:
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

// Event count: a monotonically increasing counter with Await(value). Advance() bumps the
// counter and wakes everyone whose threshold has been reached. This is the natural
// primitive for "history information" constraints expressed as event ordinals.
class EventCount {
 public:
  explicit EventCount(Runtime& runtime);

  // Increments the count and returns the new value.
  std::uint64_t Advance();

  // Blocks until the count is >= `value`.
  void Await(std::uint64_t value);

  std::uint64_t Read() const;

 private:
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  std::uint64_t count_ = 0;
};

}  // namespace syneval

#endif  // SYNEVAL_SYNC_PRIMITIVES_H_
