// CSP-style message passing [Hoare, "Communicating Sequential Processes", CACM 1978 —
// the paper's reference 20 and its explicit future-work target: "it is important to be
// able to evaluate and compare them. The techniques presented in this paper may prove
// useful in these evaluations."].
//
// This module provides synchronous (rendezvous) and buffered channels plus a guarded
// Select, enough to write every canonical problem in the server-process style: the
// shared resource is a sequential process owning its state; clients synchronize purely
// by sending/receiving. Admission decisions become rendezvous acceptances, which the
// instrumentation hooks record under the channel-group lock (the usual contract).
//
// All channels of one ChannelGroup share a single lock; Select is therefore trivially
// atomic across alternatives. That is a deliberate simplification — the evaluation
// cares about the mechanism's *expressive* structure, not about lock-splitting.

#ifndef SYNEVAL_CHANNEL_CHANNEL_H_
#define SYNEVAL_CHANNEL_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "syneval/runtime/runtime.h"

namespace syneval {

class ChannelGroup;
class Channel;

// The message: a tag (who/what) and a value (parameter). Rich enough for every
// canonical problem without templating the whole stack.
struct ChanMsg {
  std::int64_t tag = 0;
  std::int64_t value = 0;
  Channel* reply = nullptr;  // CSP idiom: carry the reply channel in the request.
};

class Channel {
 public:
  // capacity 0 = synchronous rendezvous; > 0 = asynchronous bounded buffer.
  Channel(ChannelGroup& group, std::string name, int capacity = 0);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Blocks until the message is accepted (rendezvous) or buffered (capacity > 0).
  // `on_accept` runs under the group lock at the instant a receiver takes the message
  // (or it enters the buffer) — the admission instant for client protocols.
  void Send(ChanMsg message);
  void Send(ChanMsg message, const std::function<void()>& on_accept);
  // `on_register` runs under the group lock when the send becomes visible to
  // receivers/selectors — the arrival instant for client protocols.
  void Send(ChanMsg message, const std::function<void()>& on_register,
            const std::function<void()>& on_accept);

  // Blocks until a message is available. The hooked form runs `on_receive` under the
  // group lock at the take instant, with the received message.
  ChanMsg Receive();
  ChanMsg Receive(const std::function<void(const ChanMsg&)>& on_receive);

  // True when senders are blocked on this channel. Only meaningful under the group
  // lock — i.e. from Select guards; the server-process idiom uses it to let guards
  // observe *waiting* requests (e.g. writers-priority).
  bool HasSenders() const { return !senders_.empty(); }

  // Non-blocking probes (used by tests).
  bool TrySend(ChanMsg message);
  bool TryReceive(ChanMsg* message);

  const std::string& name() const { return name_; }

 private:
  friend class ChannelGroup;

  struct PendingSend {
    ChanMsg message;
    bool taken = false;
    std::function<void()> on_accept;
    std::uint64_t send_start = 0;  // NowNanos when the send blocked (telemetry).
  };

  // True when a Receive would not block. Caller holds the group lock.
  bool ReceivableLocked() const;
  // Takes one message (buffer first, then rendezvous with the longest-waiting sender).
  // Caller holds the group lock; only valid when ReceivableLocked().
  ChanMsg TakeLocked();

  ChannelGroup& group_;
  std::string name_;
  int capacity_;
  std::deque<ChanMsg> buffer_;
  std::deque<PendingSend*> senders_;  // Arrival order.
  // Parallel to buffer_: NowNanos each message entered the buffer, so the telemetry
  // hold histogram can report message dwell time (rendezvous messages dwell 0).
  std::deque<std::uint64_t> buffer_enqueued_;
};

// One alternative of a guarded Select (receive direction only, per classic CSP input
// guards).
struct SelectCase {
  Channel* channel = nullptr;
  std::function<bool()> guard;  // Optional; nullptr = always open.
};

class ChannelGroup {
 public:
  explicit ChannelGroup(Runtime& runtime);

  ChannelGroup(const ChannelGroup&) = delete;
  ChannelGroup& operator=(const ChannelGroup&) = delete;

  // Guarded alternative: blocks until some case with a true guard has a receivable
  // message, receives it, and returns the case index. Cases are examined in order
  // (textual priority, as in guarded commands with deterministic tie-break).
  // Guards must be pure functions of state owned by the selecting process or protected
  // by this group.
  int Select(const std::vector<SelectCase>& cases, ChanMsg* message);

 private:
  friend class Channel;

  void NotifyAllLocked();

  Runtime& runtime_;
  MechanismStats* tel_ = nullptr;  // "channel" bundle; null when not attached.
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
};

}  // namespace syneval

#endif  // SYNEVAL_CHANNEL_CHANNEL_H_
