#include "syneval/channel/channel.h"

#include <cassert>
#include <utility>

#include "syneval/telemetry/instrument.h"

namespace syneval {

ChannelGroup::ChannelGroup(Runtime& runtime)
    : runtime_(runtime),
      tel_(MechanismTelemetry(runtime, "channel")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()) {}

void ChannelGroup::NotifyAllLocked() {
  if (tel_ != nullptr) {
    // The group condvar is always broadcast (receivers, selectors and senders share it).
    tel_->broadcasts.Add(1);
  }
  cv_->NotifyAll();
}

Channel::Channel(ChannelGroup& group, std::string name, int capacity)
    : group_(group), name_(std::move(name)), capacity_(capacity) {}

bool Channel::ReceivableLocked() const { return !buffer_.empty() || !senders_.empty(); }

ChanMsg Channel::TakeLocked() {
  MechanismStats* tel = group_.tel_;
  if (!buffer_.empty()) {
    ChanMsg message = buffer_.front();
    buffer_.pop_front();
    if (tel != nullptr && !buffer_enqueued_.empty()) {
      // Hold = message dwell in the buffer, enqueue to take.
      tel->hold.Record(
          TelemetryElapsed(buffer_enqueued_.front(), group_.runtime_.NowNanos()));
      buffer_enqueued_.pop_front();
    }
    // A buffered channel may have senders blocked on a full buffer: move the
    // longest-waiting one into the freed slot.
    if (!senders_.empty()) {
      PendingSend* sender = senders_.front();
      senders_.pop_front();
      buffer_.push_back(sender->message);
      if (tel != nullptr) {
        const std::uint64_t now = group_.runtime_.NowNanos();
        tel->wait.Record(TelemetryElapsed(sender->send_start, now));
        tel->admissions.Add(1);
        tel->signals.Add(1);  // Accepting a blocked send is the implicit signal.
        buffer_enqueued_.push_back(now);
        tel->queue_depth.Set(static_cast<std::int64_t>(senders_.size()));
      }
      if (sender->on_accept) {
        sender->on_accept();
      }
      sender->taken = true;
      group_.NotifyAllLocked();
    }
    return message;
  }
  assert(!senders_.empty());
  PendingSend* sender = senders_.front();
  senders_.pop_front();
  if (tel != nullptr) {
    const std::uint64_t now = group_.runtime_.NowNanos();
    tel->wait.Record(TelemetryElapsed(sender->send_start, now));
    tel->admissions.Add(1);
    tel->signals.Add(1);
    tel->hold.Record(0);  // Rendezvous: the message never dwells.
    tel->queue_depth.Set(static_cast<std::int64_t>(senders_.size()));
  }
  if (sender->on_accept) {
    sender->on_accept();
  }
  sender->taken = true;
  group_.NotifyAllLocked();
  return sender->message;
}

void Channel::Send(ChanMsg message) { Send(message, nullptr, nullptr); }

void Channel::Send(ChanMsg message, const std::function<void()>& on_accept) {
  Send(message, nullptr, on_accept);
}

void Channel::Send(ChanMsg message, const std::function<void()>& on_register,
                   const std::function<void()>& on_accept) {
  RtLock lock(*group_.mu_);
  if (on_register) {
    on_register();
  }
  if (capacity_ > 0 && static_cast<int>(buffer_.size()) < capacity_ && senders_.empty()) {
    buffer_.push_back(message);
    if (MechanismStats* tel = group_.tel_) {
      tel->wait.Record(0);  // Buffered without blocking.
      tel->admissions.Add(1);
      buffer_enqueued_.push_back(group_.runtime_.NowNanos());
    }
    if (on_accept) {
      on_accept();
    }
    group_.NotifyAllLocked();
    return;
  }
  PendingSend pending;
  pending.message = message;
  pending.on_accept = on_accept;
  MechanismStats* const tel = group_.tel_;
  pending.send_start = TelemetryNow(tel, group_.runtime_);
  senders_.push_back(&pending);
  if (tel != nullptr) {
    tel->queue_depth.Set(static_cast<std::int64_t>(senders_.size()));
  }
  group_.NotifyAllLocked();  // A selector may be waiting for this channel.
  // Once `pending.taken` flips, the receiver may return and destroy this channel
  // (reply channels live on the receiver's stack), so after each wake only
  // Send-frame locals may be touched until the loop re-establishes !taken.
  while (!pending.taken) {
    group_.cv_->Wait(*group_.mu_);
    if (tel != nullptr) {
      tel->wakeups.Add(1);
    }
  }
}

ChanMsg Channel::Receive() { return Receive(nullptr); }

ChanMsg Channel::Receive(const std::function<void(const ChanMsg&)>& on_receive) {
  RtLock lock(*group_.mu_);
  const std::uint64_t wait_start =
      ReceivableLocked() ? 0 : TelemetryNow(group_.tel_, group_.runtime_);
  while (!ReceivableLocked()) {
    group_.cv_->Wait(*group_.mu_);
    if (MechanismStats* tel = group_.tel_) {
      tel->wakeups.Add(1);
    }
  }
  if (wait_start != 0) {
    if (MechanismStats* tel = group_.tel_) {
      // Receiver-side blocking feeds the same wait histogram as blocked sends.
      tel->wait.Record(TelemetryElapsed(wait_start, group_.runtime_.NowNanos()));
    }
  }
  const ChanMsg message = TakeLocked();
  if (on_receive) {
    on_receive(message);
  }
  return message;
}

bool Channel::TrySend(ChanMsg message) {
  RtLock lock(*group_.mu_);
  if (capacity_ > 0 && static_cast<int>(buffer_.size()) < capacity_ && senders_.empty()) {
    buffer_.push_back(message);
    if (MechanismStats* tel = group_.tel_) {
      tel->wait.Record(0);
      tel->admissions.Add(1);
      buffer_enqueued_.push_back(group_.runtime_.NowNanos());
    }
    group_.NotifyAllLocked();
    return true;
  }
  return false;
}

bool Channel::TryReceive(ChanMsg* message) {
  RtLock lock(*group_.mu_);
  if (!ReceivableLocked()) {
    return false;
  }
  *message = TakeLocked();
  return true;
}

int ChannelGroup::Select(const std::vector<SelectCase>& cases, ChanMsg* message) {
  RtLock lock(*mu_);
  std::uint64_t wait_start = 0;
  while (true) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const SelectCase& c = cases[i];
      if (c.guard && !c.guard()) {
        continue;
      }
      if (c.channel->ReceivableLocked()) {
        if (tel_ != nullptr && wait_start != 0) {
          tel_->wait.Record(TelemetryElapsed(wait_start, runtime_.NowNanos()));
        }
        *message = c.channel->TakeLocked();
        return static_cast<int>(i);
      }
    }
    if (wait_start == 0) {
      wait_start = TelemetryNow(tel_, runtime_);
    }
    cv_->Wait(*mu_);
    if (tel_ != nullptr) {
      tel_->wakeups.Add(1);
    }
  }
}

}  // namespace syneval
