#include "syneval/channel/channel.h"

#include <cassert>
#include <utility>

namespace syneval {

ChannelGroup::ChannelGroup(Runtime& runtime)
    : runtime_(runtime), mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()) {}

Channel::Channel(ChannelGroup& group, std::string name, int capacity)
    : group_(group), name_(std::move(name)), capacity_(capacity) {}

bool Channel::ReceivableLocked() const { return !buffer_.empty() || !senders_.empty(); }

ChanMsg Channel::TakeLocked() {
  if (!buffer_.empty()) {
    ChanMsg message = buffer_.front();
    buffer_.pop_front();
    // A buffered channel may have senders blocked on a full buffer: move the
    // longest-waiting one into the freed slot.
    if (!senders_.empty()) {
      PendingSend* sender = senders_.front();
      senders_.pop_front();
      buffer_.push_back(sender->message);
      if (sender->on_accept) {
        sender->on_accept();
      }
      sender->taken = true;
      group_.NotifyAllLocked();
    }
    return message;
  }
  assert(!senders_.empty());
  PendingSend* sender = senders_.front();
  senders_.pop_front();
  if (sender->on_accept) {
    sender->on_accept();
  }
  sender->taken = true;
  group_.NotifyAllLocked();
  return sender->message;
}

void Channel::Send(ChanMsg message) { Send(message, nullptr, nullptr); }

void Channel::Send(ChanMsg message, const std::function<void()>& on_accept) {
  Send(message, nullptr, on_accept);
}

void Channel::Send(ChanMsg message, const std::function<void()>& on_register,
                   const std::function<void()>& on_accept) {
  RtLock lock(*group_.mu_);
  if (on_register) {
    on_register();
  }
  if (capacity_ > 0 && static_cast<int>(buffer_.size()) < capacity_ && senders_.empty()) {
    buffer_.push_back(message);
    if (on_accept) {
      on_accept();
    }
    group_.NotifyAllLocked();
    return;
  }
  PendingSend pending;
  pending.message = message;
  pending.on_accept = on_accept;
  senders_.push_back(&pending);
  group_.NotifyAllLocked();  // A selector may be waiting for this channel.
  while (!pending.taken) {
    group_.cv_->Wait(*group_.mu_);
  }
}

ChanMsg Channel::Receive() { return Receive(nullptr); }

ChanMsg Channel::Receive(const std::function<void(const ChanMsg&)>& on_receive) {
  RtLock lock(*group_.mu_);
  while (!ReceivableLocked()) {
    group_.cv_->Wait(*group_.mu_);
  }
  const ChanMsg message = TakeLocked();
  if (on_receive) {
    on_receive(message);
  }
  return message;
}

bool Channel::TrySend(ChanMsg message) {
  RtLock lock(*group_.mu_);
  if (capacity_ > 0 && static_cast<int>(buffer_.size()) < capacity_ && senders_.empty()) {
    buffer_.push_back(message);
    group_.NotifyAllLocked();
    return true;
  }
  return false;
}

bool Channel::TryReceive(ChanMsg* message) {
  RtLock lock(*group_.mu_);
  if (!ReceivableLocked()) {
    return false;
  }
  *message = TakeLocked();
  return true;
}

int ChannelGroup::Select(const std::vector<SelectCase>& cases, ChanMsg* message) {
  RtLock lock(*mu_);
  while (true) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const SelectCase& c = cases[i];
      if (c.guard && !c.guard()) {
        continue;
      }
      if (c.channel->ReceivableLocked()) {
        *message = c.channel->TakeLocked();
        return static_cast<int>(i);
      }
    }
    cv_->Wait(*mu_);
  }
}

}  // namespace syneval
