// Telemetry compile-time switch.
//
// The telemetry layer (metrics registry, tracer, Perfetto exporter) is the repository's
// measurement substrate: every mechanism self-instruments against it, so its hot-path
// cost must be controllable. The CMake option SYNEVAL_TELEMETRY (default ON) governs
// SYNEVAL_TELEMETRY_ENABLED; when OFF the Runtime attachment points collapse to
// constant-null accessors, which lets the compiler eliminate every instrumentation
// branch (and, crucially, the clock reads) from the mechanism hot paths. The telemetry
// classes themselves always exist — benches and tests use them directly — only the
// mechanism-level instrumentation is compiled out.

#ifndef SYNEVAL_TELEMETRY_TELEMETRY_H_
#define SYNEVAL_TELEMETRY_TELEMETRY_H_

#ifndef SYNEVAL_TELEMETRY_ENABLED
#define SYNEVAL_TELEMETRY_ENABLED 1
#endif

#endif  // SYNEVAL_TELEMETRY_TELEMETRY_H_
