#include "syneval/telemetry/perfetto.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "syneval/telemetry/metrics.h"

namespace syneval {

namespace {

// One flattened trace_event record, pre-sort.
struct JsonEvent {
  double ts_us = 0;      // Chrome trace timestamps are microseconds.
  double dur_us = 0;     // ph "X" only.
  char ph = 'i';         // X, i, s, f.
  std::uint32_t tid = 0;
  std::uint64_t id = 0;  // Flow id (s/f only).
  std::string name;
  std::string category;
  std::string args;      // Pre-rendered JSON object body, may be empty.
};

double TimestampMicros(const Event& event) {
  // Wall-clock stamp if the recorder had a clock; otherwise one microsecond per
  // logical step so deterministic traces lay out readably.
  const std::uint64_t ns = event.wall_ns != 0 ? event.wall_ns : event.seq * 1000;
  return static_cast<double>(ns) / 1000.0;
}

std::string Number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return buf;
}

void AppendEvent(std::string& out, const JsonEvent& event, int pid, bool& first) {
  if (!first) {
    out += ",\n";
  }
  first = false;
  out += "  {\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
         JsonEscape(event.category.empty() ? "op" : event.category) +
         "\",\"ph\":\"" + event.ph + "\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(event.tid) + ",\"ts\":" + Number(event.ts_us);
  if (event.ph == 'X') {
    out += ",\"dur\":" + Number(event.dur_us);
  }
  if (event.ph == 's' || event.ph == 'f') {
    out += ",\"id\":" + std::to_string(event.id);
    if (event.ph == 'f') {
      out += ",\"bp\":\"e\"";
    }
  }
  if (!event.args.empty()) {
    out += ",\"args\":{" + event.args + "}";
  } else if (event.ph == 'i') {
    out += ",\"s\":\"t\"";
  }
  out += "}";
}

}  // namespace

std::string ExportChromeTrace(const std::vector<Event>& events,
                              const TelemetryTracer* tracer,
                              const ChromeTraceOptions& options) {
  std::vector<JsonEvent> out_events;
  std::set<std::uint32_t> threads;

  // Pair request/enter/exit phases per op_instance into wait and op spans.
  struct OpenOp {
    const Event* request = nullptr;
    const Event* enter = nullptr;
  };
  std::map<std::uint64_t, OpenOp> open;
  for (const Event& event : events) {
    threads.insert(event.thread);
    switch (event.kind) {
      case EventKind::kRequest:
        open[event.op_instance].request = &event;
        break;
      case EventKind::kEnter: {
        OpenOp& op = open[event.op_instance];
        op.enter = &event;
        if (op.request != nullptr) {
          JsonEvent wait;
          wait.ph = 'X';
          wait.tid = event.thread;
          wait.name = "wait:" + event.op;
          wait.category = "wait";
          wait.ts_us = TimestampMicros(*op.request);
          wait.dur_us = std::max(0.0, TimestampMicros(event) - wait.ts_us);
          wait.args = "\"op_instance\":" + std::to_string(event.op_instance) +
                      ",\"request_seq\":" + std::to_string(op.request->seq);
          out_events.push_back(std::move(wait));
        }
        break;
      }
      case EventKind::kExit: {
        const auto it = open.find(event.op_instance);
        if (it != open.end() && it->second.enter != nullptr) {
          const Event& enter = *it->second.enter;
          JsonEvent span;
          span.ph = 'X';
          span.tid = enter.thread;
          span.name = enter.op;
          span.category = "op";
          span.ts_us = TimestampMicros(enter);
          span.dur_us = std::max(0.0, TimestampMicros(event) - span.ts_us);
          span.args = "\"op_instance\":" + std::to_string(event.op_instance) +
                      ",\"enter_seq\":" + std::to_string(enter.seq) +
                      ",\"exit_seq\":" + std::to_string(event.seq) +
                      ",\"param\":" + std::to_string(enter.param) +
                      ",\"value\":" + std::to_string(event.value);
          out_events.push_back(std::move(span));
          open.erase(it);
        }
        break;
      }
      case EventKind::kMark: {
        JsonEvent mark;
        mark.ph = 'i';
        mark.tid = event.thread;
        mark.name = event.op;
        mark.category = "mark";
        mark.ts_us = TimestampMicros(event);
        out_events.push_back(std::move(mark));
        break;
      }
    }
  }

  if (tracer != nullptr) {
    for (const TelemetryTracer::Record& record : tracer->Snapshot()) {
      threads.insert(record.thread);
      JsonEvent event;
      event.tid = record.thread;
      event.name = record.name;
      event.category = record.category;
      event.ts_us = static_cast<double>(record.start_ns) / 1000.0;
      switch (record.type) {
        case TelemetryTracer::RecordType::kSpan:
          event.ph = 'X';
          event.dur_us = std::max(
              0.0, static_cast<double>(record.end_ns - record.start_ns) / 1000.0);
          break;
        case TelemetryTracer::RecordType::kInstant:
          event.ph = 'i';
          break;
        case TelemetryTracer::RecordType::kFlowStart:
          event.ph = 's';
          event.id = record.flow_id;
          break;
        case TelemetryTracer::RecordType::kFlowEnd:
          event.ph = 'f';
          event.id = record.flow_id;
          break;
      }
      out_events.push_back(std::move(event));
    }
  }

  std::stable_sort(out_events.begin(), out_events.end(),
                   [](const JsonEvent& a, const JsonEvent& b) { return a.ts_us < b.ts_us; });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"syneval\"},"
                    "\"traceEvents\":[\n";
  bool first = true;
  // Process/thread metadata first: names the tracks in the Perfetto UI.
  {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(options.pid) + ",\"args\":{\"name\":\"" +
           JsonEscape(options.process_name) + "\"}}";
  }
  for (const std::uint32_t tid : threads) {
    out += ",\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(options.pid) + ",\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"" + (tid == 0 ? "main" : "t" + std::to_string(tid)) +
           "\"}}";
  }
  for (const JsonEvent& event : out_events) {
    AppendEvent(out, event, options.pid, first);
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path, const std::vector<Event>& events,
                      const TelemetryTracer* tracer, const ChromeTraceOptions& options) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ExportChromeTrace(events, tracer, options);
  return static_cast<bool>(file);
}

}  // namespace syneval
