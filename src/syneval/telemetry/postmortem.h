// Postmortem: turn a flight-recorder window + detector state into a causal story.
//
// The anomaly detector names *what* went wrong (a wait-for cycle, a lost wakeup, a
// starved request); the flight recorder retains *how* the run got there (the last few
// hundred block/wake/acquire/signal/fault events, always on, even during measurement).
// BuildPostmortem joins the two: it snapshots the rings, resolves raw resource pointers
// back to the names the anomaly text uses (preferring the detector's semantic names —
// "CriticalRegion.when" — over the recorder's), infers the most likely root cause, and
// reconstructs a narrative:
//
//   * deadlock     — the detector's named wait-for cycle, cross-referenced with each
//                    edge's acquisition event (who acquired the held resource, when)
//                    and each member's still-open block event;
//   * lost wakeup  — the signal that fell on an empty queue (or the injected
//                    drop-signal that swallowed it) versus the waiter that blocked
//                    after it and never woke;
//   * starvation   — the admissions that overtook the pending request, and CCR guard
//                    re-tests that kept failing for the same waiter;
//   * injected fault — when a FaultInjector fired in the window, the fault family is
//                    the root cause by ground truth and the story starts there.
//
// The result renders three ways: ToText (diagnostics, test failure dumps, the
// syneval_postmortem CLI), ToJson (the additive `postmortem` key of bench schema v3),
// and AddToTracer (a Perfetto slice + instants laid over the run's timeline).

#ifndef SYNEVAL_TELEMETRY_POSTMORTEM_H_
#define SYNEVAL_TELEMETRY_POSTMORTEM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "syneval/telemetry/flight_recorder.h"

namespace syneval {

class AnomalyDetector;
class TelemetryTracer;

// One decoded, name-resolved event of the postmortem window.
struct PostmortemEvent {
  std::uint64_t seq = 0;
  std::uint64_t time_nanos = 0;
  std::uint32_t thread = 0;
  std::string type;      // FlightEventTypeName at snapshot time.
  std::string resource;  // Resolved display name.
  std::uint64_t arg = 0;

  std::string ToString() const;
};

struct Postmortem {
  // Root cause: an injected fault family ("lost-signal", "stall", "kill-thread",
  // "spurious-wakeup") when a fault fired in the window; otherwise the dominant
  // anomaly kind ("deadlock", "lost-wakeup", "starvation", "stuck-waiter");
  // "unexplained" when the run misbehaved with neither; "" when there is nothing to
  // explain (empty() is true).
  std::string cause;
  std::string summary;                  // One-line headline.
  std::vector<std::string> anomalies;   // Detector findings, rendered.
  std::vector<std::string> narrative;   // Causal story, one step per line.
  std::vector<PostmortemEvent> window;  // Tail of the merged rings, seq order.
  std::uint64_t events_recorded = 0;    // Recorder totals at snapshot time.
  std::uint64_t events_evicted = 0;

  bool empty() const { return cause.empty(); }

  std::string ToText() const;

  // One JSON object: {"cause":...,"summary":...,"anomalies":[...],"narrative":[...],
  // "events":[{"seq":..,"time_ns":..,"thread":..,"type":..,"resource":..,"arg":..}],
  // "events_recorded":N,"events_evicted":M}. Embedded verbatim by the bench reporter
  // under the schema-v3 `postmortem` key.
  std::string ToJson() const;

  // Lays the postmortem over the trace timeline: one "postmortem: <cause>" span
  // covering the window plus an instant per window event, category "postmortem".
  void AddToTracer(TelemetryTracer& tracer) const;
};

struct PostmortemOptions {
  int max_window_events = 48;  // Tail of the merged rings kept in `window`.
  int max_anomalies = 8;       // Detector findings kept (they can be verbose).
};

// Snapshots `recorder`, joins it with `detector` (nullable: pointer-name resolution
// and anomaly classification are skipped without one), infers the cause, and builds
// the narrative. Safe to call while other threads are still recording (the snapshot
// is weakly consistent; see FlightRecorder::Snapshot).
Postmortem BuildPostmortem(const FlightRecorder& recorder, const AnomalyDetector* detector,
                           const PostmortemOptions& options = {});

// Maps a fault label to its calibration family: "drop-signal" / "drop-notify" /
// "drop-broadcast" → "lost-signal"; "stall" / "delay-lock" → "stall"; others map to
// themselves. Accepts the injector's mirror labels ("fault.drop-signal") too.
std::string FaultCauseFamily(std::string_view fault_name);

}  // namespace syneval

#endif  // SYNEVAL_TELEMETRY_POSTMORTEM_H_
