#include "syneval/telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace syneval {

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kOpRequest:
      return "op-request";
    case FlightEventType::kOpEnter:
      return "op-enter";
    case FlightEventType::kOpExit:
      return "op-exit";
    case FlightEventType::kBlock:
      return "block";
    case FlightEventType::kWake:
      return "wake";
    case FlightEventType::kAcquire:
      return "acquire";
    case FlightEventType::kRelease:
      return "release";
    case FlightEventType::kSignal:
      return "signal";
    case FlightEventType::kBroadcast:
      return "broadcast";
    case FlightEventType::kFaultFired:
      return "fault";
    case FlightEventType::kGuardRetest:
      return "guard-retest";
    case FlightEventType::kClientLoad:
      return "client-load";
    case FlightEventType::kClientStore:
      return "client-store";
  }
  return "?";
}

namespace {

int CeilPow2(int value) {
  int pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

}  // namespace

FlightRecorder::Options FlightRecorder::Options::ForWorkload(
    int threads, int expected_events_per_thread) {
  Options options;
  // A power-of-two ring count ≥ the thread count spreads the id-modulo hash evenly;
  // the initial segment holds the expected volume outright, and growth covers the
  // tail of trials that outrun the estimate.
  options.rings = CeilPow2(std::clamp(threads, 1, 512));
  options.events_per_ring = CeilPow2(std::clamp(expected_events_per_thread, 8, 8192));
  options.grow_on_evict = true;
  options.max_events_per_ring = std::max(options.events_per_ring, 8192);
  return options;
}

FlightRecorder::FlightRecorder(const Options& options) : options_(options) {
  options_.rings = std::max(1, options_.rings);
  options_.events_per_ring = std::max(8, options_.events_per_ring);
  options_.max_events_per_ring =
      std::max(options_.max_events_per_ring, options_.events_per_ring);
  rings_ = std::vector<Ring>(static_cast<std::size_t>(options_.rings));
  for (Ring& ring : rings_) {
    ring.seg.store(new Segment(options_.events_per_ring), std::memory_order_relaxed);
  }
}

FlightRecorder::~FlightRecorder() {
  for (Ring& ring : rings_) {
    FreeChain(ring.seg.load(std::memory_order_relaxed));
  }
}

void FlightRecorder::FreeChain(Segment* seg) {
  while (seg != nullptr) {
    Segment* prev = seg->prev;
    delete seg;
    seg = prev;
  }
}

FlightRecorder::Segment* FlightRecorder::GrowOrWrap(Ring& ring, Segment* seg,
                                                    std::uint64_t* cursor) {
  if (options_.grow_on_evict) {
    std::lock_guard<std::mutex> lock(grow_mu_);
    for (;;) {
      Segment* current = ring.seg.load(std::memory_order_relaxed);
      if (current != seg) {
        // Another writer grew the ring while we waited; take a slot there.
        seg = current;
        const std::uint64_t fresh =
            seg->cursor.fetch_add(1, std::memory_order_relaxed);
        if (fresh < static_cast<std::uint64_t>(seg->capacity)) {
          *cursor = fresh;
          return seg;
        }
        continue;  // The grown segment filled up too; grow again or hit the cap.
      }
      int total = 0;
      for (Segment* s = seg; s != nullptr; s = s->prev) {
        total += s->capacity;
      }
      if (total >= options_.max_events_per_ring) {
        break;  // At the cap: fall through to eviction.
      }
      const int next_capacity =
          std::clamp(options_.max_events_per_ring - total, 8, seg->capacity * 2);
      Segment* grown = new Segment(next_capacity);
      grown->prev = seg;
      *cursor = grown->cursor.fetch_add(1, std::memory_order_relaxed);  // Slot 0.
      // Release-publish: a reader that acquires `grown` sees its slots zeroed and the
      // prev link set.
      ring.seg.store(grown, std::memory_order_release);
      return grown;
    }
  }
  ring.evicted.fetch_add(1, std::memory_order_relaxed);
  return seg;  // *cursor ≥ capacity; the modulo in Record wraps onto the oldest slot.
}

void FlightRecorder::OnTraceEvent(const Event& event) {
  FlightEventType type;
  switch (event.kind) {
    case EventKind::kRequest:
      type = FlightEventType::kOpRequest;
      break;
    case EventKind::kEnter:
      type = FlightEventType::kOpEnter;
      break;
    case EventKind::kExit:
      type = FlightEventType::kOpExit;
      break;
    default:
      return;  // kMark and friends carry no admission information.
  }
  const void* label = InternLabel(event.op);
  // Logical traces may have no wall clock; fall back to the exporter's seq × 1000
  // convention so op events interleave sensibly with DetRuntime step timestamps.
  const std::uint64_t time = event.wall_ns != 0 ? event.wall_ns : event.seq * 1000;
  Record(event.thread, type, label, time, event.op_instance);
}

std::string FlightRecorder::RegisterName(const void* resource, const std::string& base) {
  std::lock_guard<std::mutex> lock(names_mu_);
  const int count = ++name_counts_[base];
  std::string name = count == 1 ? base : base + "#" + std::to_string(count);
  names_[resource] = name;
  return name;
}

const void* FlightRecorder::InternLabel(std::string_view label) {
  std::lock_guard<std::mutex> lock(names_mu_);
  auto it = labels_.find(label);
  if (it != labels_.end()) {
    return it->second;
  }
  label_storage_.emplace_back(label);
  const std::string& stored = label_storage_.back();
  const void* key = &stored;
  labels_.emplace(stored, key);
  names_[key] = stored;
  return key;
}

std::string FlightRecorder::NameOf(const void* resource) const {
  if (resource == nullptr) {
    return "-";
  }
  std::lock_guard<std::mutex> lock(names_mu_);
  auto it = names_.find(resource);
  if (it != names_.end()) {
    return it->second;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(reinterpret_cast<std::uintptr_t>(resource)));
  return buffer;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(rings_.size() * static_cast<std::size_t>(options_.events_per_ring) / 4);
  for (const Ring& ring : rings_) {
    for (const Segment* seg = ring.seg.load(std::memory_order_acquire); seg != nullptr;
         seg = seg->prev) {
      for (int i = 0; i < seg->capacity; ++i) {
        const Slot& slot = seg->slots[i];
        const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq == 0) {
          continue;
        }
        FlightEvent event;
        event.seq = seq;
        event.time_nanos = slot.time.load(std::memory_order_relaxed);
        const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
        event.resource = slot.resource.load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_relaxed) != seq) {
          continue;  // Overwritten while being read; drop rather than return torn.
        }
        event.thread = static_cast<std::uint32_t>(meta & 0xFFFFFFFFULL);
        event.type = static_cast<FlightEventType>((meta >> 32) & 0xFF);
        event.arg = meta >> 40;
        events.push_back(event);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });
  return events;
}

std::uint64_t FlightRecorder::evicted() const {
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.evicted.load(std::memory_order_relaxed);
  }
  return total;
}

void FlightRecorder::Clear() {
  for (Ring& ring : rings_) {
    FreeChain(ring.seg.load(std::memory_order_relaxed));
    ring.seg.store(new Segment(options_.events_per_ring), std::memory_order_relaxed);
    ring.evicted.store(0, std::memory_order_relaxed);
  }
  seq_.store(0, std::memory_order_release);
  frozen_.store(false, std::memory_order_release);
}

}  // namespace syneval
