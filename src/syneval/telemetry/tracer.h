// TelemetryTracer: wall-clock spans, instants, and signal→wakeup flow edges.
//
// The tracer is the timeline companion of the metrics registry: where the registry
// aggregates (histograms, counters), the tracer keeps individual records so the
// Perfetto exporter can lay them out per thread and draw flow arrows from each signal
// to the wakeup(s) it caused — the visual form of the lost-wakeup/convoy analysis the
// anomaly detector does symbolically.
//
// Runtimes feed flows from their condition-variable wrappers (OnSignal at notify,
// OnWake at resumption); benches and tests may add spans and instants directly.
// Recording takes a mutex — the tracer is attached only when a trace is actually being
// captured, never during steady-state measurement.

#ifndef SYNEVAL_TELEMETRY_TRACER_H_
#define SYNEVAL_TELEMETRY_TRACER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "syneval/telemetry/telemetry.h"

namespace syneval {

class TelemetryTracer {
 public:
  enum class RecordType : std::uint8_t {
    kSpan = 0,       // Complete duration event (Chrome ph "X").
    kInstant = 1,    // Point event (ph "i").
    kFlowStart = 2,  // Signal delivered (ph "s").
    kFlowEnd = 3,    // Waiter resumed by that signal (ph "f").
  };

  struct Record {
    RecordType type = RecordType::kInstant;
    std::uint32_t thread = 0;
    std::string name;
    std::string category;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;   // Spans only.
    std::uint64_t flow_id = 0;  // Flow records only.
  };

  TelemetryTracer() = default;

  TelemetryTracer(const TelemetryTracer&) = delete;
  TelemetryTracer& operator=(const TelemetryTracer&) = delete;

  void AddSpan(std::uint32_t thread, std::string name, std::string category,
               std::uint64_t start_ns, std::uint64_t end_ns);
  void AddInstant(std::uint32_t thread, std::string name, std::string category,
                  std::uint64_t ns);

  // A notify on the condition/queue identified by `key` was delivered by `thread`.
  // Starts a flow; subsequent OnWake calls with the same key close against it (a
  // broadcast fans one flow out to several wakeups).
  void OnSignal(const void* key, std::uint32_t thread, std::uint64_t ns, bool broadcast);

  // `thread` resumed from a wait on `key`. No-op if no signal was seen on `key` yet
  // (e.g. a spurious or pre-attachment wakeup).
  void OnWake(const void* key, std::uint32_t thread, std::uint64_t ns);

  std::vector<Record> Snapshot() const;
  std::size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
  std::map<const void*, std::uint64_t> pending_flow_;  // key → open flow id.
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace syneval

#endif  // SYNEVAL_TELEMETRY_TRACER_H_
