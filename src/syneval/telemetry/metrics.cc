#include "syneval/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace syneval {

namespace {

// Per-thread shard assignment: consecutive registering threads take consecutive slots,
// which keeps one-thread-per-core workloads on distinct cache lines.
int ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(slot % 16u);
}

}  // namespace

// ---------------------------------------------------------------------------------------
// Counter

void Counter::Add(std::uint64_t n) {
  shards_[static_cast<std::size_t>(ThisThreadShard() % kShards)].value.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------------------
// Gauge

void Gauge::Set(std::int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  RaiseMax(value);
}

void Gauge::Add(std::int64_t delta) {
  const std::int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  RaiseMax(now);
}

std::int64_t Gauge::Value() const { return value_.load(std::memory_order_relaxed); }

std::int64_t Gauge::Max() const { return max_.load(std::memory_order_relaxed); }

void Gauge::RaiseMax(std::int64_t candidate) {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------------------
// Histogram

int Histogram::BucketFor(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  if (bucket >= kBuckets - 1) {
    return UINT64_MAX;
  }
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::Record(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(BucketFor(value))].fetch_add(1,
                                                                 std::memory_order_relaxed);
  sum_.Add(value);
  std::uint64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value, std::memory_order_relaxed)) {
  }
  std::uint64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::Sum() const { return sum_.Value(); }

std::uint64_t Histogram::Min() const {
  const std::uint64_t seen = min_.load(std::memory_order_relaxed);
  return seen == UINT64_MAX ? 0 : seen;
}

std::uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const std::uint64_t count = Count();
  return count == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(count);
}

std::uint64_t Histogram::Percentile(double p) const {
  const std::uint64_t count = Count();
  if (count == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the sample whose bucket upper edge we report (1-based, nearest-rank).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(
                                     p / 100.0 * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    seen += buckets_[static_cast<std::size_t>(bucket)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return std::clamp(BucketUpperBound(bucket), Min(), Max());
    }
  }
  return Max();
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    counts[static_cast<std::size_t>(bucket)] =
        buckets_[static_cast<std::size_t>(bucket)].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.Reset();
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_storage_.emplace_back();
    it = counters_.emplace(name, &counter_storage_.back()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_storage_.emplace_back();
    it = gauges_.emplace(name, &gauge_storage_.back()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histogram_storage_.emplace_back();
    it = histograms_.emplace(name, &histogram_storage_.back()).first;
  }
  return *it->second;
}

MechanismStats& MetricsRegistry::ForMechanism(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mechanisms_.find(name);
  if (it == mechanisms_.end()) {
    mechanism_storage_.emplace_back();
    MechanismStats& stats = mechanism_storage_.back();
    stats.name = name;
    it = mechanisms_.emplace(name, &stats).first;
    // Expose the bundle's members under flat names so snapshots and JSON see them.
    histograms_.emplace(name + "/wait_ns", &stats.wait);
    histograms_.emplace(name + "/hold_ns", &stats.hold);
    counters_.emplace(name + "/admissions", &stats.admissions);
    counters_.emplace(name + "/signals", &stats.signals);
    counters_.emplace(name + "/broadcasts", &stats.broadcasts);
    counters_.emplace(name + "/wakeups", &stats.wakeups);
    gauges_.emplace(name + "/queue_depth", &stats.queue_depth);
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value(), gauge->Max()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->Count(), histogram->Mean(),
                                   histogram->Percentile(50), histogram->Percentile(95),
                                   histogram->Percentile(99), histogram->Max()});
  }
  return snapshot;
}

std::vector<std::string> MetricsRegistry::MechanismNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(mechanisms_.size());
  for (const auto& [name, stats] : mechanisms_) {
    (void)stats;
    names.push_back(name);
  }
  return names;
}

const MechanismStats* MetricsRegistry::FindMechanism(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = mechanisms_.find(name);
  return it == mechanisms_.end() ? nullptr : it->second;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const Snapshot snapshot = TakeSnapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& sample : snapshot.counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(sample.name) + "\":" + std::to_string(sample.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& sample : snapshot.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(sample.name) + "\":{\"value\":" + std::to_string(sample.value) +
           ",\"max\":" + std::to_string(sample.max) + '}';
  }
  out += "},\"histograms\":{";
  first = true;
  char mean[32];
  for (const auto& sample : snapshot.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    std::snprintf(mean, sizeof mean, "%.3f", sample.mean);
    out += '"' + JsonEscape(sample.name) + "\":{\"count\":" + std::to_string(sample.count) +
           ",\"mean\":" + mean + ",\"p50\":" + std::to_string(sample.p50) +
           ",\"p95\":" + std::to_string(sample.p95) +
           ",\"p99\":" + std::to_string(sample.p99) +
           ",\"max\":" + std::to_string(sample.max) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace syneval
