// Instrumentation glue between mechanisms and the telemetry layer.
//
// Every mechanism resolves its MechanismStats bundle once at construction and then
// calls these helpers at its admission/release points. All helpers are null-tolerant:
// with no registry attached they cost one predictable branch, and with telemetry
// compiled out (SYNEVAL_TELEMETRY=OFF) Runtime::metrics() is constant null, so the
// whole instrumentation — including the NowNanos clock reads — is dead code.
//
// Timestamp convention: MechanismStats histograms are recorded in Runtime::NowNanos
// units — wall nanoseconds under OsRuntime, logical steps × 1000 under DetRuntime
// (replayable "latencies" in scheduling steps).

#ifndef SYNEVAL_TELEMETRY_INSTRUMENT_H_
#define SYNEVAL_TELEMETRY_INSTRUMENT_H_

#include <cstdint>

#include "syneval/runtime/runtime.h"
#include "syneval/telemetry/metrics.h"

namespace syneval {

// The bundle for `name`, or null when no registry is attached (or telemetry is off).
inline MechanismStats* MechanismTelemetry(Runtime& runtime, const char* name) {
  if (MetricsRegistry* metrics = runtime.metrics()) {
    return &metrics->ForMechanism(name);
  }
  return nullptr;
}

// Timestamp for a later TelemetryElapsed; 0 (and no clock read) when not instrumented.
inline std::uint64_t TelemetryNow(const MechanismStats* stats, Runtime& runtime) {
  return stats != nullptr ? runtime.NowNanos() : 0;
}

// now - start, saturated at 0 (defensive: DetRuntime logical time never goes
// backwards, but OS steady clocks on some platforms have been seen to).
inline std::uint64_t TelemetryElapsed(std::uint64_t start, std::uint64_t now) {
  return now > start ? now - start : 0;
}

}  // namespace syneval

#endif  // SYNEVAL_TELEMETRY_INSTRUMENT_H_
