// Metrics registry: lock-free-recording counters, gauges and log-bucketed latency
// histograms, named and owned by a MetricsRegistry.
//
// Design constraints (this is on the hot path of every mechanism):
//   * Recording takes no lock: counters are sharded across cache lines and histograms
//     are one relaxed fetch_add on a power-of-two bucket. The registry mutex guards
//     only metric *creation* (name → object), which mechanisms do once at construction.
//   * Reading is wait-free but weakly consistent: a snapshot taken while writers run
//     sees each atomic at some recent value, which is exactly what a sampling exporter
//     needs. Exact totals require writers to have finished (the bench harness joins
//     its workload threads before reporting).
//
// MechanismStats is the standard instrument bundle every synchronization mechanism in
// this repository reports through (wait time, hold time, admissions, signals, wakeups,
// queue depth) — the quantities Bloom's Section 5 argues about qualitatively.

#ifndef SYNEVAL_TELEMETRY_METRICS_H_
#define SYNEVAL_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "syneval/telemetry/telemetry.h"

namespace syneval {

// Monotonic counter. Adds go to one of kShards cache-line-sized slots chosen per
// thread, so concurrent writers on different cores do not bounce one line.
class Counter {
 public:
  Counter() = default;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1);
  std::uint64_t Value() const;
  void Reset();

 private:
  static constexpr int kShards = 16;
  // Padded to a cache line rather than alignas(64): separation is what prevents false
  // sharing between shards, and keeping alignof(Counter) == 8 lets containers (the
  // registry's deques) store metric objects without over-aligned allocation.
  struct Shard {
    std::atomic<std::uint64_t> value{0};
    char padding[64 - sizeof(std::atomic<std::uint64_t>)];
  };
  std::array<Shard, kShards> shards_;
};

// Last-write-wins instantaneous value, with a high-water mark.
class Gauge {
 public:
  Gauge() = default;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value);
  void Add(std::int64_t delta);
  std::int64_t Value() const;
  std::int64_t Max() const;  // Highest value ever Set/reached; 0 before any write.

 private:
  void RaiseMax(std::int64_t candidate);

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

// Log-bucketed histogram of non-negative 64-bit samples (latencies in nanoseconds).
// Bucket 0 holds the value 0; bucket i (1..64) holds [2^(i-1), 2^i). The last bucket
// therefore covers [2^63, 2^64) — the overflow range; no sample is ever dropped.
// Percentiles are resolved to the bucket upper edge, clamped to the observed min/max,
// so a histogram with one sample reports that sample exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  Histogram() = default;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::uint64_t value);

  std::uint64_t Count() const;
  std::uint64_t Sum() const;
  std::uint64_t Min() const;  // 0 when empty.
  std::uint64_t Max() const;  // 0 when empty.
  double Mean() const;        // 0 when empty.

  // p in [0, 100]. Returns 0 when empty. Monotone in p; Percentile(100) == Max().
  std::uint64_t Percentile(double p) const;

  std::vector<std::uint64_t> BucketCounts() const;

  // Bucket index a value falls into, and the (inclusive) value range of a bucket.
  static int BucketFor(std::uint64_t value);
  static std::uint64_t BucketLowerBound(int bucket);
  static std::uint64_t BucketUpperBound(int bucket);

  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  Counter sum_;
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// The standard per-mechanism instrument bundle. Created (once per mechanism name) via
// MetricsRegistry::ForMechanism; multiple instances of the same mechanism type under
// one registry share a bundle, which is what an overhead table wants.
//
// Conventions (see docs/OBSERVABILITY.md for the per-mechanism mapping):
//   wait        — request→enter: nanoseconds from an operation's arrival at the
//                 mechanism to its admission (entry queues, guarded queues, P()).
//   hold        — enter→exit: nanoseconds of one exclusive tenure (monitor ownership,
//                 serializer possession, region body, semaphore unit, op bracket).
//   admissions  — operations admitted.
//   signals     — explicit wakeup notifications delivered (Signal, V, notify).
//   broadcasts  — broadcast notifications delivered.
//   wakeups     — threads resumed from a mechanism-level block; wakeups / admissions
//                 > 1 quantifies futile (Mesa-style re-contended) wakeups.
//   queue_depth — instantaneous blocked-thread count, with high-water mark.
struct MechanismStats {
  std::string name;
  Histogram wait;
  Histogram hold;
  Counter admissions;
  Counter signals;
  Counter broadcasts;
  Counter wakeups;
  Gauge queue_depth;
};

// Named metric store. Creation is mutex-guarded and idempotent (same name → same
// object, stable address for the registry's lifetime); recording through the returned
// references is lock-free. Snapshot/ToJson may run concurrently with writers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  MechanismStats& ForMechanism(const std::string& name);

  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
  };
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
  };

  // Weakly consistent snapshot of everything registered, names sorted.
  Snapshot TakeSnapshot() const;

  // Registered mechanism bundle names, sorted (bundle metrics also appear in
  // TakeSnapshot under "<mechanism>/<metric>" names).
  std::vector<std::string> MechanismNames() const;
  const MechanismStats* FindMechanism(const std::string& name) const;

  // The whole registry as one JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,"p50":..}}}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;  // Guards the maps only; metric objects are append-only.
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::deque<MechanismStats> mechanism_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::map<std::string, MechanismStats*> mechanisms_;
};

// JSON string escaping shared by the telemetry emitters (registry JSON, Chrome trace,
// bench harness output).
std::string JsonEscape(const std::string& text);

}  // namespace syneval

#endif  // SYNEVAL_TELEMETRY_METRICS_H_
