// FlightRecorder: always-on, fixed-capacity, lock-free rings of compact sync events.
//
// The tracer (tracer.h) and the trace recorder (trace/recorder.h) both take a mutex per
// record, so the docs warn against attaching them during steady-state measurement —
// which means the run that actually exhibits a deadlock or lost wakeup usually has no
// timeline to explain it from. The flight recorder closes that gap: both runtimes (and
// the fault injector, and mechanisms with implicit signalling) record every
// synchronization state change into per-thread ring buffers cheap enough to leave on
// while measuring. When an anomaly fires, postmortem.h snapshots the rings and
// reconstructs a causal narrative from the last events before the run got stuck.
//
// Recording cost and memory model:
//   * One relaxed fetch_add on a global sequence counter (its own cache line), one
//     relaxed fetch_add on the recording thread's ring cursor, and five relaxed/release
//     stores into the slot. No locks, no allocation, no branches on the hot path.
//   * Every slot field is a std::atomic, written relaxed with the slot's sequence
//     number published last with release order (a per-slot seqlock). Snapshot() reads
//     the sequence with acquire before and relaxed after the fields; a slot whose
//     sequence changed mid-read (a writer lapped the reader) is discarded rather than
//     returned torn. Concurrent snapshots are therefore TSan-clean and weakly
//     consistent — exactly what a postmortem of an already-stuck run needs.
//   * Rings are selected by thread id modulo the ring count. Two threads that collide
//     share a ring safely (the cursor is atomic); they merely share its capacity.
//
// Resources are recorded as raw pointers. Cold paths (primitive construction, op-label
// interning) may register display names through RegisterName/InternLabel, which take a
// mutex — never the recording path.
//
// The recorder attaches through the Runtime telemetry seam
// (Runtime::AttachFlightRecorder) and every instrumentation site compiles out under
// -DSYNEVAL_TELEMETRY=OFF exactly like the metrics/tracer sites.

#ifndef SYNEVAL_TELEMETRY_FLIGHT_RECORDER_H_
#define SYNEVAL_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "syneval/telemetry/telemetry.h"
#include "syneval/trace/recorder.h"

namespace syneval {

// Compact event vocabulary. kOpRequest/kOpEnter/kOpExit arrive through the
// TraceRecorder bridge (OnTraceEvent); the rest are recorded directly by runtimes,
// mechanisms, and the fault injector.
enum class FlightEventType : std::uint8_t {
  kOpRequest = 0,   // Operation became visible to its mechanism (resource = op label).
  kOpEnter = 1,     // Operation admitted.
  kOpExit = 2,      // Operation released the resource.
  kBlock = 3,       // Thread parked on resource (mutex / condvar / queue).
  kWake = 4,        // Thread resumed from its wait on resource.
  kAcquire = 5,     // Thread now holds resource.
  kRelease = 6,     // Thread released resource.
  kSignal = 7,      // Notify delivered on resource (arg = waiters before delivery).
  kBroadcast = 8,   // NotifyAll delivered on resource (arg = waiters before delivery).
  kFaultFired = 9,  // Injected fault fired (arg = FaultKind; resource = site label).
  kGuardRetest = 10,  // CCR exit-time guard re-test (arg = 1 when satisfied/admitted).
  // Client problem-state accesses (resource = the client cell, e.g. a SharedCell<T>
  // from analysis/hb.h). Recorded by instrumented workloads so the happens-before
  // engine can flag unordered conflicting accesses as races; never recorded by
  // mechanisms or runtimes themselves.
  kClientLoad = 11,
  kClientStore = 12,
};

// Short name: "op-request", "block", "signal", "fault", ...
const char* FlightEventTypeName(FlightEventType type);

// One decoded event, as returned by Snapshot(). `seq` is the global recording order
// across all rings (1-based); `time_nanos` is the recorder's clock at the site
// (scheduler steps × 1000 under DetRuntime, wall nanoseconds under OsRuntime).
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t time_nanos = 0;
  std::uint32_t thread = 0;
  FlightEventType type = FlightEventType::kBlock;
  const void* resource = nullptr;
  std::uint64_t arg = 0;
};

class FlightRecorder : public TraceObserver {
 public:
  struct Options {
    // Number of per-thread rings. Threads hash in by id; more rings = less sharing.
    int rings = 32;
    // Initial events per ring; older events are evicted ring-locally (or the ring
    // grows, below).
    int events_per_ring = 256;

    // Grow-on-evict: instead of overwriting its oldest event, a full ring chains a
    // new segment of double its capacity (retired segments stay readable), until the
    // ring's total capacity reaches max_events_per_ring — only then does it start
    // evicting. Growth is a cold path (mutex + allocation) taken at most
    // O(log(max/initial)) times per ring per trial; the recording fast path is
    // unchanged. Off by default: steady-state benchmark recorders prefer a fixed
    // footprint to an allocation mid-measurement.
    bool grow_on_evict = false;
    // Total capacity ceiling per ring once growth is enabled (approximate: the last
    // segment is clamped to the remaining headroom, floored at 8 slots).
    int max_events_per_ring = 8192;

    // Right-sized for one DetRuntime trial: a handful of threads and a bounded-step
    // run. Sweeps build a recorder per seed, and construction zeroes every slot, so
    // the default 32×256 rings would cost more to allocate than to fill. Growth is
    // on — a trial that turns out chatty (deep fault plans, soak bodies) keeps its
    // full window instead of truncating the postmortem.
    static Options ForTrial() {
      Options options{8, 128};
      options.grow_on_evict = true;
      return options;
    }

    // Sized from the workload's shape: at least one ring per expected thread
    // (rounded up to a power of two, so the id-modulo hash spreads evenly) and the
    // initial segment sized for the expected per-thread event volume, with growth
    // enabled as the escape hatch for the tail of trials that outrun the estimate.
    static Options ForWorkload(int threads, int expected_events_per_thread);
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(const Options& options);
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Hot path: records one event. Lock-free, wait-free apart from the two relaxed
  // fetch_adds; safe from any thread concurrently with Snapshot(). Defined inline —
  // at mechanism fast-path call sites the call overhead would otherwise rival the
  // recording itself.
  void Record(std::uint32_t thread, FlightEventType type, const void* resource,
              std::uint64_t time_nanos, std::uint64_t arg = 0) {
    if (frozen_.load(std::memory_order_relaxed)) {
      return;
    }
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    Ring& ring = rings_[thread % rings_.size()];
    Segment* seg = ring.seg.load(std::memory_order_acquire);
    std::uint64_t cursor = seg->cursor.fetch_add(1, std::memory_order_relaxed);
    if (cursor >= static_cast<std::uint64_t>(seg->capacity)) {
      // Cold path: grow the ring (if enabled and under the cap) or count an eviction
      // and wrap onto the oldest slot.
      seg = GrowOrWrap(ring, seg, &cursor);
    }
    Slot& slot = seg->slots[cursor % static_cast<std::uint64_t>(seg->capacity)];
    // Per-slot seqlock: invalidate, fill relaxed, publish the sequence with release.
    // A concurrent Snapshot() that observes a mid-write slot sees either seq == 0 or a
    // sequence that changes across its field reads, and discards the slot.
    slot.seq.store(0, std::memory_order_relaxed);
    slot.time.store(time_nanos, std::memory_order_relaxed);
    slot.meta.store(PackMeta(thread, type, arg), std::memory_order_relaxed);
    slot.resource.store(resource, std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_release);
  }

  // TraceObserver bridge: forwards kRequest/kEnter/kExit op events from an attached
  // TraceRecorder (TraceRecorder::SetSecondaryObserver) as kOpRequest/kOpEnter/kOpExit
  // flight events whose resource is the interned op label. Takes the interning mutex —
  // op events already pay a mutex in the recorder itself, so this path is never the
  // steady-state bottleneck.
  void OnTraceEvent(const Event& event) override;

  // Cold path: associates a display name with a resource pointer (called at primitive
  // construction). Names are de-duplicated per base ("mutex", "mutex#2", ...) exactly
  // like AnomalyDetector::RegisterResource; re-registering a pointer renames it.
  // Returns the unique name assigned.
  std::string RegisterName(const void* resource, const std::string& base);

  // Interns `label` and returns a stable pointer key that NameOf resolves back to it
  // (used for op names and fault-site labels).
  const void* InternLabel(std::string_view label);

  // Resolves a resource pointer registered via RegisterName/InternLabel; falls back to
  // "0x<hex>" for unregistered pointers and "-" for null.
  std::string NameOf(const void* resource) const;

  // Merged view of all rings, ordered by global seq. Safe concurrently with writers:
  // slots overwritten mid-read are skipped, so the result is a weakly consistent
  // window ending at (or slightly before) the most recent events.
  std::vector<FlightEvent> Snapshot() const;

  // Stops recording: every subsequent Record() is dropped (until Clear()). The runtime
  // freezes the recorder when it starts tearing down an aborted or deadlocked trial —
  // the diagnosis is already made, and the unwind replays block/exit events in
  // whatever order the OS schedules the unwinding threads, which would put a
  // nondeterministic tail on an otherwise schedule-determined event window.
  void Freeze() { frozen_.store(true, std::memory_order_relaxed); }
  bool frozen() const { return frozen_.load(std::memory_order_relaxed); }

  // Events recorded since construction/Clear (including ones since evicted).
  std::uint64_t recorded() const { return seq_.load(std::memory_order_relaxed); }

  // Events no longer retained: recorded() minus the live slots (ring eviction).
  std::uint64_t evicted() const;

  // Resets all rings and counters. Callers must ensure no writers are active.
  void Clear();

  const Options& options() const { return options_; }

 private:
  // meta layout: bits 0..31 thread, 32..39 type, 40..63 arg (saturated to 24 bits).
  static constexpr std::uint64_t kArgMax = (1ull << 24) - 1;
  static std::uint64_t PackMeta(std::uint32_t thread, FlightEventType type,
                                std::uint64_t arg) {
    return static_cast<std::uint64_t>(thread) |
           (static_cast<std::uint64_t>(type) << 32) |
           ((arg < kArgMax ? arg : kArgMax) << 40);
  }

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty; published last (release).
    std::atomic<std::uint64_t> time{0};
    std::atomic<std::uint64_t> meta{0};  // thread | type << 32 | arg << 40.
    std::atomic<const void*> resource{nullptr};
  };

  // One fixed-capacity block of slots. A ring is a chain of segments: `seg` points at
  // the segment currently being written; `prev` links retired (full) segments, which
  // stay allocated and readable until Clear()/destruction so Snapshot() keeps their
  // events and writers that raced a growth can still wrap-write them safely.
  struct Segment {
    explicit Segment(int cap)
        : capacity(cap), slots(std::make_unique<Slot[]>(static_cast<std::size_t>(cap))) {}
    const int capacity;
    std::unique_ptr<Slot[]> slots;
    Segment* prev = nullptr;  // Older retired segment (owned; freed on Clear/dtor).
    alignas(64) std::atomic<std::uint64_t> cursor{0};
  };

  struct Ring {
    std::atomic<Segment*> seg{nullptr};  // Current (newest) segment.
    alignas(64) std::atomic<std::uint64_t> evicted{0};  // Overwritten events.
  };

  // Cold path for a full segment: under grow_mu_, either chains a doubled segment
  // (updating *cursor to a fresh slot in it) or — at the capacity cap, or with growth
  // disabled — counts one eviction and returns the segment for a wrap-write.
  Segment* GrowOrWrap(Ring& ring, Segment* seg, std::uint64_t* cursor);

  void FreeChain(Segment* seg);

  Options options_;
  std::vector<Ring> rings_;
  std::mutex grow_mu_;
  std::atomic<bool> frozen_{false};
  alignas(64) std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex names_mu_;
  std::map<const void*, std::string> names_;
  std::map<std::string, int> name_counts_;
  std::map<std::string, const void*, std::less<>> labels_;
  std::deque<std::string> label_storage_;  // Stable addresses for interned labels.
};

}  // namespace syneval

#endif  // SYNEVAL_TELEMETRY_FLIGHT_RECORDER_H_
