#include "syneval/telemetry/postmortem.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/metrics.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {

namespace {

// Resolution order for the dominant anomaly: a deadlock subsumes the stuck waiters it
// strands; a lost wakeup explains its stuck waiter; starvation outranks the generic
// stuck-waiter catch-all.
constexpr AnomalyKind kKindPriority[] = {
    AnomalyKind::kDeadlock,
    AnomalyKind::kLostWakeup,
    AnomalyKind::kStarvation,
    AnomalyKind::kStuckWaiter,
};

const Anomaly* DominantAnomaly(const std::vector<Anomaly>& anomalies) {
  for (AnomalyKind kind : kKindPriority) {
    for (const Anomaly& anomaly : anomalies) {
      if (anomaly.kind == kind) {
        return &anomaly;
      }
    }
  }
  return nullptr;
}

}  // namespace

std::string FaultCauseFamily(std::string_view fault_name) {
  constexpr std::string_view kPrefix = "fault.";
  if (fault_name.substr(0, kPrefix.size()) == kPrefix) {
    fault_name.remove_prefix(kPrefix.size());
  }
  if (fault_name == "drop-signal" || fault_name == "drop-notify" ||
      fault_name == "drop-broadcast") {
    return "lost-signal";
  }
  if (fault_name == "stall" || fault_name == "delay-lock") {
    return "stall";
  }
  return std::string(fault_name);
}

std::string PostmortemEvent::ToString() const {
  std::ostringstream os;
  os << "seq=" << seq << " t" << thread << " " << type << " " << resource;
  if (arg != 0) {
    os << " arg=" << arg;
  }
  os << " @" << time_nanos << "ns";
  return os.str();
}

Postmortem BuildPostmortem(const FlightRecorder& recorder, const AnomalyDetector* detector,
                           const PostmortemOptions& options) {
  Postmortem pm;
  const std::vector<FlightEvent> events = recorder.Snapshot();
  pm.events_recorded = recorder.recorded();
  pm.events_evicted = recorder.evicted();

  std::map<const void*, std::string> det_names;
  std::map<const void*, std::vector<std::uint32_t>> holders;
  std::vector<Anomaly> anomalies;
  if (detector != nullptr) {
    for (const AnomalyDetector::ResourceSnapshot& snap : detector->SnapshotResources()) {
      det_names[snap.resource] = snap.name;
      if (!snap.holders.empty()) {
        holders[snap.resource] = snap.holders;
      }
    }
    anomalies = detector->anomalies();
  }
  // Detector names win: they are the ones the anomaly descriptions use, and they cover
  // mechanism-level resources the recorder only knows as raw pointers.
  const auto resolve = [&](const void* resource) {
    auto it = det_names.find(resource);
    return it != det_names.end() ? it->second : recorder.NameOf(resource);
  };

  // Evidence scan over the full snapshot (the stored window may be a shorter tail).
  std::map<std::uint32_t, const FlightEvent*> open_blocks;  // Blocked, never woke.
  std::map<std::pair<std::uint32_t, const void*>, const FlightEvent*> last_acquire;
  std::vector<const FlightEvent*> faults;
  const FlightEvent* last_empty_signal = nullptr;
  std::map<std::uint32_t, int> failed_retests;
  for (const FlightEvent& event : events) {
    switch (event.type) {
      case FlightEventType::kBlock:
        open_blocks[event.thread] = &event;
        break;
      case FlightEventType::kWake:
        open_blocks.erase(event.thread);
        break;
      case FlightEventType::kAcquire:
        last_acquire[{event.thread, event.resource}] = &event;
        break;
      case FlightEventType::kSignal:
      case FlightEventType::kBroadcast:
        if (event.arg == 0) {
          last_empty_signal = &event;
        }
        break;
      case FlightEventType::kFaultFired:
        faults.push_back(&event);
        break;
      case FlightEventType::kGuardRetest:
        if (event.arg == 0) {
          ++failed_retests[event.thread];
        }
        break;
      default:
        break;
    }
  }

  const Anomaly* dominant = DominantAnomaly(anomalies);
  if (!faults.empty()) {
    // Ground truth beats inference: when an injected fault fired, its family is the
    // root cause whatever the detector classified the wreckage as.
    pm.cause = FaultCauseFamily(resolve(faults.back()->resource));
  } else if (dominant != nullptr) {
    pm.cause = AnomalyKindName(dominant->kind);
  } else if (!events.empty()) {
    pm.cause = "unexplained";
  } else {
    return pm;  // Nothing recorded, nothing detected: nothing to explain.
  }

  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    if (static_cast<int>(i) >= options.max_anomalies) {
      pm.anomalies.push_back("... and " + std::to_string(anomalies.size() - i) + " more");
      break;
    }
    pm.anomalies.push_back(anomalies[i].ToString());
  }

  const auto add = [&](std::string line) { pm.narrative.push_back(std::move(line)); };

  // 1. Injected faults, in firing order — the story starts at the ground truth.
  for (const FlightEvent* fault : faults) {
    std::ostringstream os;
    os << "injected " << resolve(fault->resource) << " fired on t" << fault->thread
       << " at seq " << fault->seq << " (@" << fault->time_nanos << "ns)";
    add(os.str());
  }

  // 2. Lost-signal story: the delivery that found nobody (or was swallowed) versus the
  // waiter that parked after it and never woke.
  if (last_empty_signal != nullptr) {
    std::ostringstream os;
    os << "t" << last_empty_signal->thread << " signalled "
       << resolve(last_empty_signal->resource) << " at seq " << last_empty_signal->seq
       << " while no thread was waiting — the signal fell on the floor";
    add(os.str());
    for (const auto& [thread, block] : open_blocks) {
      if (block->resource == last_empty_signal->resource &&
          block->seq > last_empty_signal->seq) {
        std::ostringstream vs;
        vs << "t" << thread << " blocked on " << resolve(block->resource) << " at seq "
           << block->seq << " — after that signal was already gone — and never woke";
        add(vs.str());
      }
    }
  }

  // 3. Hold/wait edges: who holds what (with the acquisition event) while blocked on
  // what — the per-edge evidence for a wait-for cycle. `holders` is keyed by resource
  // *address*, so the edges are ordered by (thread, resource name) before emission:
  // heap layout must never leak into a narrative that is diffed across runs.
  std::vector<std::pair<std::uint32_t, const void*>> hold_edges;
  for (const auto& [resource, holder_list] : holders) {
    for (std::uint32_t holder : holder_list) {
      hold_edges.emplace_back(holder, resource);
    }
  }
  std::sort(hold_edges.begin(), hold_edges.end(),
            [&](const auto& a, const auto& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return resolve(a.second) < resolve(b.second);
            });
  for (const auto& [holder, resource] : hold_edges) {
    std::ostringstream os;
    os << "t" << holder << " holds " << resolve(resource);
    auto acq = last_acquire.find({holder, resource});
    if (acq != last_acquire.end()) {
      os << " (acquired at seq " << acq->second->seq << ", @" << acq->second->time_nanos
         << "ns)";
    }
    auto block = open_blocks.find(holder);
    if (block != open_blocks.end()) {
      os << " while blocked on " << resolve(block->second->resource) << " since seq "
         << block->second->seq;
    }
    add(os.str());
  }

  // 4. Remaining open waits (threads that hold nothing but are stuck anyway).
  for (const auto& [thread, block] : open_blocks) {
    bool is_holder = false;
    for (const auto& [resource, holder_list] : holders) {
      for (std::uint32_t holder : holder_list) {
        is_holder |= holder == thread;
      }
    }
    if (is_holder) {
      continue;
    }
    if (last_empty_signal != nullptr && block->resource == last_empty_signal->resource &&
        block->seq > last_empty_signal->seq) {
      continue;  // Already told as the lost-signal victim.
    }
    std::ostringstream os;
    os << "t" << thread << " blocked on " << resolve(block->resource) << " at seq "
       << block->seq << " and never woke";
    add(os.str());
  }

  // 5. Guard re-test pressure: the CCR starvation signature.
  for (const auto& [thread, count] : failed_retests) {
    if (count < 3) {
      continue;
    }
    std::ostringstream os;
    os << "t" << thread << "'s guard was re-tested " << count
       << " times without ever admitting it";
    add(os.str());
  }

  // Window: tail of the merged rings, names resolved now (the recorder may not
  // outlive the postmortem).
  const std::size_t keep = options.max_window_events <= 0
                               ? events.size()
                               : std::min<std::size_t>(events.size(),
                                                       static_cast<std::size_t>(
                                                           options.max_window_events));
  pm.window.reserve(keep);
  for (std::size_t i = events.size() - keep; i < events.size(); ++i) {
    PostmortemEvent out;
    out.seq = events[i].seq;
    out.time_nanos = events[i].time_nanos;
    out.thread = events[i].thread;
    out.type = FlightEventTypeName(events[i].type);
    out.resource = resolve(events[i].resource);
    out.arg = events[i].arg;
    pm.window.push_back(std::move(out));
  }

  std::ostringstream os;
  os << pm.cause << " — " << anomalies.size() << " detector finding"
     << (anomalies.size() == 1 ? "" : "s") << ", " << pm.window.size()
     << "-event window (" << pm.events_recorded << " recorded, " << pm.events_evicted
     << " evicted)";
  pm.summary = os.str();
  return pm;
}

std::string Postmortem::ToText() const {
  std::ostringstream os;
  os << "postmortem: " << summary << "\n";
  if (!anomalies.empty()) {
    os << "detector findings:\n";
    for (const std::string& anomaly : anomalies) {
      os << "  - " << anomaly << "\n";
    }
  }
  if (!narrative.empty()) {
    os << "narrative:\n";
    for (const std::string& line : narrative) {
      os << "  - " << line << "\n";
    }
  }
  if (!window.empty()) {
    os << "event window (" << window.size() << " events):\n";
    for (const PostmortemEvent& event : window) {
      os << "  " << event.ToString() << "\n";
    }
  }
  return os.str();
}

std::string Postmortem::ToJson() const {
  std::string out = "{\"cause\":\"" + JsonEscape(cause) + "\",\"summary\":\"" +
                    JsonEscape(summary) + "\",\"anomalies\":[";
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    out += (i == 0 ? "\"" : ",\"") + JsonEscape(anomalies[i]) + "\"";
  }
  out += "],\"narrative\":[";
  for (std::size_t i = 0; i < narrative.size(); ++i) {
    out += (i == 0 ? "\"" : ",\"") + JsonEscape(narrative[i]) + "\"";
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < window.size(); ++i) {
    const PostmortemEvent& event = window[i];
    out += i == 0 ? "" : ",";
    out += "{\"seq\":" + std::to_string(event.seq) +
           ",\"time_ns\":" + std::to_string(event.time_nanos) +
           ",\"thread\":" + std::to_string(event.thread) + ",\"type\":\"" +
           JsonEscape(event.type) + "\",\"resource\":\"" + JsonEscape(event.resource) +
           "\",\"arg\":" + std::to_string(event.arg) + "}";
  }
  out += "],\"events_recorded\":" + std::to_string(events_recorded) +
         ",\"events_evicted\":" + std::to_string(events_evicted) + "}";
  return out;
}

void Postmortem::AddToTracer(TelemetryTracer& tracer) const {
  if (window.empty()) {
    return;
  }
  const std::uint64_t start = window.front().time_nanos;
  const std::uint64_t end = window.back().time_nanos;
  tracer.AddSpan(0, "postmortem: " + cause, "postmortem", start,
                 end > start ? end : start + 1);
  for (const PostmortemEvent& event : window) {
    tracer.AddInstant(event.thread, event.type + " " + event.resource, "postmortem",
                      event.time_nanos);
  }
}

}  // namespace syneval
