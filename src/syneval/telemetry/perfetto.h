// Chrome trace_event / Perfetto JSON export.
//
// Merges the logical TraceRecorder event stream (request/enter/exit triples with
// optional wall-clock stamps) and a TelemetryTracer's records (extra spans, instants,
// and signal→wakeup flows) into one JSON document loadable by ui.perfetto.dev or
// chrome://tracing:
//
//   * each operation instance becomes two complete ("ph":"X") duration events on its
//     thread's track — "wait:<op>" from request to admission and "<op>" from admission
//     to exit — so convoys and starvation are visible as stacked wait spans;
//   * each signal becomes a flow start ("ph":"s") and each wakeup it caused a flow
//     finish ("ph":"f") with the same id, drawing the arrow that makes a lost wakeup
//     (an "s" with no "f") or a stolen wakeup visually traceable;
//   * kMark events become instants ("ph":"i").
//
// Timestamps: events carrying wall_ns use it; events without (pure logical traces) fall
// back to seq * 1000, which renders a deterministic-runtime trace at one microsecond
// per scheduling step. "displayTimeUnit":"ns" keeps sub-microsecond spans readable.

#ifndef SYNEVAL_TELEMETRY_PERFETTO_H_
#define SYNEVAL_TELEMETRY_PERFETTO_H_

#include <string>
#include <vector>

#include "syneval/telemetry/tracer.h"
#include "syneval/trace/event.h"

namespace syneval {

struct ChromeTraceOptions {
  int pid = 1;
  std::string process_name = "syneval";
};

// Renders the merged trace as a Chrome trace_event JSON object. `tracer` may be null.
std::string ExportChromeTrace(const std::vector<Event>& events,
                              const TelemetryTracer* tracer,
                              const ChromeTraceOptions& options = {});

// Writes ExportChromeTrace output to `path`. Returns false (and writes nothing further)
// on I/O failure.
bool WriteChromeTrace(const std::string& path, const std::vector<Event>& events,
                      const TelemetryTracer* tracer, const ChromeTraceOptions& options = {});

}  // namespace syneval

#endif  // SYNEVAL_TELEMETRY_PERFETTO_H_
