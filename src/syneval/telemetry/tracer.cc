#include "syneval/telemetry/tracer.h"

#include <utility>

namespace syneval {

void TelemetryTracer::AddSpan(std::uint32_t thread, std::string name, std::string category,
                              std::uint64_t start_ns, std::uint64_t end_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back({RecordType::kSpan, thread, std::move(name), std::move(category),
                      start_ns, end_ns, 0});
}

void TelemetryTracer::AddInstant(std::uint32_t thread, std::string name,
                                 std::string category, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(
      {RecordType::kInstant, thread, std::move(name), std::move(category), ns, 0, 0});
}

void TelemetryTracer::OnSignal(const void* key, std::uint32_t thread, std::uint64_t ns,
                               bool broadcast) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_flow_id_++;
  pending_flow_[key] = id;
  records_.push_back({RecordType::kFlowStart, thread,
                      broadcast ? "broadcast" : "signal", "sync", ns, 0, id});
}

void TelemetryTracer::OnWake(const void* key, std::uint32_t thread, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_flow_.find(key);
  if (it == pending_flow_.end()) {
    return;
  }
  records_.push_back({RecordType::kFlowEnd, thread, "wakeup", "sync", ns, 0, it->second});
}

std::vector<TelemetryTracer::Record> TelemetryTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t TelemetryTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void TelemetryTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  pending_flow_.clear();
}

}  // namespace syneval
