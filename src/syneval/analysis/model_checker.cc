#include "syneval/analysis/model_checker.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "syneval/pathexpr/parser.h"

namespace syneval {

namespace {

bool ApplyAllOptimistic(const std::vector<PathAction>& actions, PathState& state);

// PathController::ApplyAction with guards assumed true: the checker cannot see host
// predicate state, so [p] is modelled as nondeterministically-eventually-true.
bool ApplyActionOptimistic(const PathAction& action, PathState& state) {
  switch (action.kind) {
    case PathAction::Kind::kAcquire:
      if (state.counters[action.index] <= 0) {
        return false;
      }
      --state.counters[action.index];
      return true;
    case PathAction::Kind::kRelease:
      ++state.counters[action.index];
      return true;
    case PathAction::Kind::kBraceEnter:
      if (state.braces[action.index] == 0 && !ApplyAllOptimistic(action.nested, state)) {
        return false;
      }
      ++state.braces[action.index];
      return true;
    case PathAction::Kind::kBraceExit:
      --state.braces[action.index];
      if (state.braces[action.index] == 0) {
        const bool ok = ApplyAllOptimistic(action.nested, state);
        assert(ok && "path epilogue failed to fire");
        (void)ok;
      }
      return true;
    case PathAction::Kind::kGuard:
      return true;
  }
  return false;
}

bool ApplyAllOptimistic(const std::vector<PathAction>& actions, PathState& state) {
  for (const PathAction& action : actions) {
    if (!ApplyActionOptimistic(action, state)) {
      return false;
    }
  }
  return true;
}

// Fires the whole prologue of one operation atomically, choosing the first fireable
// alternative per path — the same deterministic rule PathController::TryBeginLocked
// uses, so model markings match runtime markings event for event.
std::optional<std::vector<int>> TryBegin(const std::vector<OpInPath>& op_paths,
                                         PathState& state) {
  PathState working = state;
  std::vector<int> alts;
  alts.reserve(op_paths.size());
  for (const OpInPath& in_path : op_paths) {
    bool fired = false;
    for (std::size_t alt = 0; alt < in_path.alternatives.size(); ++alt) {
      PathState trial = working;
      if (ApplyAllOptimistic(in_path.alternatives[alt].begin, trial)) {
        working = std::move(trial);
        alts.push_back(static_cast<int>(alt));
        fired = true;
        break;
      }
    }
    if (!fired) {
      return std::nullopt;
    }
  }
  state = std::move(working);
  return alts;
}

void ApplyEnd(const std::vector<OpInPath>& op_paths, const std::vector<int>& alts,
              PathState& state) {
  for (std::size_t i = 0; i < op_paths.size(); ++i) {
    const bool ok = ApplyAllOptimistic(
        op_paths[i].alternatives[static_cast<std::size_t>(alts[i])].end, state);
    assert(ok && "path epilogue failed to fire");
    (void)ok;
  }
}

struct OpenBegin {
  int op = 0;
  std::vector<int> alts;
};

struct Instance {
  int script = 0;
  int pc = 0;
  std::vector<OpenBegin> open;  // Begin order; Ends match the last open of their op.
};

struct State {
  PathState marking;
  std::vector<Instance> instances;
};

std::string InstanceKey(const Instance& inst) {
  std::ostringstream os;
  os << inst.script << '@' << inst.pc << ':';
  for (const OpenBegin& open : inst.open) {
    os << open.op << '(';
    for (int alt : open.alts) {
      os << alt << ',';
    }
    os << ')';
  }
  return os.str();
}

// Canonical key: marking plus the *multiset* of instance descriptors (instances of the
// same script at the same position are interchangeable, so order is normalized away).
std::string StateKey(const State& state) {
  std::ostringstream os;
  for (std::int64_t c : state.marking.counters) {
    os << c << ',';
  }
  os << '|';
  for (std::int64_t b : state.marking.braces) {
    os << b << ',';
  }
  os << '|';
  std::vector<std::string> keys;
  keys.reserve(state.instances.size());
  for (const Instance& inst : state.instances) {
    keys.push_back(InstanceKey(inst));
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    os << key << ';';
  }
  return os.str();
}

class Checker {
 public:
  explicit Checker(const PathModel& model)
      : model_(model), compiled_(CompilePaths(ParsePathProgram(model.program))) {
    for (const auto& [op, paths] : compiled_.ops) {
      op_ids_[op] = static_cast<int>(op_names_.size());
      op_names_.push_back(op);
      op_paths_.push_back(&paths);
    }
    if (op_names_.size() > 64) {
      throw std::invalid_argument("model checker supports at most 64 operations");
    }
    scripts_ = model.scripts;
    if (scripts_.empty()) {
      for (const std::string& op : op_names_) {
        scripts_.push_back(SimpleCall(op));
      }
    }
    ResolveScripts();
  }

  ModelCheckResult Run();

 private:
  // BFS discovery edge for a state: how it was first produced from `state`.
  struct Parent {
    int state = -1;
    CounterexampleStep step;
    bool spawn = false;  // Edge spawned a fresh instance (of script `index`).
    int index = -1;      // Spawn: script index. Advance: instance index in parent.
  };

  void ResolveScripts();
  int AddState(State state, const Parent& parent);
  std::uint64_t FireableMask(const PathState& marking) const;
  std::uint64_t WaitingMask(const State& state, std::uint64_t fireable) const;
  Counterexample BuildCounterexample(int wedged) const;
  void FindStarvableOps(ModelCheckResult* result) const;

  const PathModel& model_;
  CompiledPaths compiled_;
  std::vector<ClientScript> scripts_;
  std::vector<std::string> op_names_;
  std::map<std::string, int> op_ids_;
  std::vector<const std::vector<OpInPath>*> op_paths_;
  std::vector<std::vector<int>> script_step_ops_;  // Per script, per step: op id.
  std::uint64_t entry_ops_ = 0;                    // Ops starting some script.

  std::vector<State> states_;
  std::unordered_map<std::string, int> index_;
  std::vector<Parent> parents_;
  std::vector<std::vector<int>> succs_;
  std::vector<std::uint64_t> fireable_;  // Per state: ops whose prologue fires.
  std::vector<std::uint64_t> waiting_;   // Per state: ops an active instance waits at.
  std::vector<bool> op_began_;
  std::size_t transitions_ = 0;
};

void Checker::ResolveScripts() {
  if (scripts_.empty()) {
    throw std::invalid_argument("path model has no client scripts");
  }
  for (const ClientScript& script : scripts_) {
    if (script.steps.empty() || script.steps.front().kind != ClientStep::Kind::kBegin) {
      throw std::invalid_argument("script '" + script.name +
                                  "' must start with a Begin step");
    }
    std::vector<int> ops;
    std::map<int, int> open_counts;
    for (const ClientStep& step : script.steps) {
      const auto it = op_ids_.find(step.op);
      if (it == op_ids_.end()) {
        throw std::invalid_argument("script '" + script.name + "' references '" +
                                    step.op + "', which no path constrains");
      }
      ops.push_back(it->second);
      if (step.kind == ClientStep::Kind::kBegin) {
        ++open_counts[it->second];
      } else if (--open_counts[it->second] < 0) {
        throw std::invalid_argument("script '" + script.name + "' ends '" + step.op +
                                    "' with no open begin");
      }
    }
    for (const auto& [op, count] : open_counts) {
      if (count != 0) {
        throw std::invalid_argument("script '" + script.name + "' leaves '" +
                                    op_names_[static_cast<std::size_t>(op)] + "' open");
      }
    }
    entry_ops_ |= std::uint64_t{1} << ops.front();
    script_step_ops_.push_back(std::move(ops));
  }
}

std::uint64_t Checker::FireableMask(const PathState& marking) const {
  std::uint64_t mask = 0;
  for (std::size_t op = 0; op < op_paths_.size(); ++op) {
    PathState trial = marking;
    if (TryBegin(*op_paths_[op], trial).has_value()) {
      mask |= std::uint64_t{1} << op;
    }
  }
  return mask;
}

std::uint64_t Checker::WaitingMask(const State& state, std::uint64_t fireable) const {
  std::uint64_t mask = 0;
  for (const Instance& inst : state.instances) {
    const ClientScript& script = scripts_[static_cast<std::size_t>(inst.script)];
    if (inst.pc < static_cast<int>(script.steps.size()) &&
        script.steps[static_cast<std::size_t>(inst.pc)].kind ==
            ClientStep::Kind::kBegin) {
      const int op = script_step_ops_[static_cast<std::size_t>(inst.script)]
                                    [static_cast<std::size_t>(inst.pc)];
      if ((fireable & (std::uint64_t{1} << op)) == 0) {
        mask |= std::uint64_t{1} << op;
      }
    }
  }
  return mask;
}

int Checker::AddState(State state, const Parent& parent) {
  std::string key = StateKey(state);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    return it->second;
  }
  const int id = static_cast<int>(states_.size());
  index_.emplace(std::move(key), id);
  const std::uint64_t fireable = FireableMask(state.marking);
  fireable_.push_back(fireable);
  waiting_.push_back(WaitingMask(state, fireable));
  states_.push_back(std::move(state));
  parents_.push_back(parent);
  succs_.emplace_back();
  return id;
}

Counterexample Checker::BuildCounterexample(int wedged) const {
  // The chain of state ids root → wedged. Each stored state is exactly the state its
  // recorded parent edge produced, so instance indices are consistent along the chain.
  std::vector<int> chain;
  for (int at = wedged; at >= 0; at = parents_[static_cast<std::size_t>(at)].state) {
    chain.push_back(at);
  }
  std::reverse(chain.begin(), chain.end());

  // Walk the chain assigning logical client ids: `slots` mirrors the instances vector
  // of the current state (spawns append; a finishing advance erases its index).
  Counterexample cex;
  std::vector<int> slots;
  int next_client = 0;
  for (std::size_t k = 1; k < chain.size(); ++k) {
    const Parent& edge = parents_[static_cast<std::size_t>(chain[k])];
    CounterexampleStep step = edge.step;
    if (edge.spawn) {
      step.client = next_client++;
      step.script = scripts_[static_cast<std::size_t>(edge.index)].name;
      slots.push_back(step.client);
      // A one-step script would finish at spawn; transitions never add its instance.
      const auto parent_n = states_[static_cast<std::size_t>(chain[k - 1])]
                                .instances.size();
      if (states_[static_cast<std::size_t>(chain[k])].instances.size() == parent_n) {
        slots.pop_back();
      }
    } else {
      const auto n = static_cast<std::size_t>(edge.index);
      step.client = slots[n];
      const State& parent_state = states_[static_cast<std::size_t>(chain[k - 1])];
      const Instance& inst = parent_state.instances[n];
      step.script = scripts_[static_cast<std::size_t>(inst.script)].name;
      if (states_[static_cast<std::size_t>(chain[k])].instances.size() <
          parent_state.instances.size()) {
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(n));
      }
    }
    cex.word.push_back(std::move(step));
  }

  // Everything a client is (or would be) stuck at: active instances' next begins plus
  // every script entry operation — all unfireable, by definition of the wedge.
  const State& state = states_[static_cast<std::size_t>(wedged)];
  std::vector<std::string> blocked;
  for (std::size_t n = 0; n < state.instances.size(); ++n) {
    const Instance& inst = state.instances[n];
    const auto& ops = script_step_ops_[static_cast<std::size_t>(inst.script)];
    const std::string& op =
        op_names_[static_cast<std::size_t>(ops[static_cast<std::size_t>(inst.pc)])];
    cex.blocked_clients.push_back(
        {slots[n], scripts_[static_cast<std::size_t>(inst.script)].name, op});
    blocked.push_back(op);
  }
  for (std::size_t op = 0; op < op_names_.size(); ++op) {
    if ((entry_ops_ >> op) & 1) {
      blocked.push_back(op_names_[op]);
    }
  }
  std::sort(blocked.begin(), blocked.end());
  blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
  cex.blocked_ops = std::move(blocked);
  return cex;
}

ModelCheckResult Checker::Run() {
  ModelCheckResult result;
  result.guard_dependent = !compiled_.predicate_names.empty();
  op_began_.assign(op_names_.size(), false);

  State initial;
  initial.marking = compiled_.InitialState();
  AddState(std::move(initial), {});

  for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
    if (states_.size() > model_.max_states) {
      result.safety = SafetyVerdict::kBoundExceeded;
      result.states = states_.size();
      result.transitions = transitions_;
      return result;
    }
    // states_ may reallocate as successors are added; copy the frame we expand.
    const State state = states_[static_cast<std::size_t>(i)];
    const std::uint64_t fireable = fireable_[static_cast<std::size_t>(i)];
    bool any_enabled = false;

    auto add_edge = [&](State next, const CounterexampleStep& step, bool spawn,
                        int index) {
      any_enabled = true;
      ++transitions_;
      const int to = AddState(std::move(next), {i, step, spawn, index});
      succs_[static_cast<std::size_t>(i)].push_back(to);
    };

    // Active instances advance one step.
    for (std::size_t n = 0; n < state.instances.size(); ++n) {
      const Instance& inst = state.instances[n];
      const ClientScript& script = scripts_[static_cast<std::size_t>(inst.script)];
      const ClientStep& step = script.steps[static_cast<std::size_t>(inst.pc)];
      const int op = script_step_ops_[static_cast<std::size_t>(inst.script)]
                                    [static_cast<std::size_t>(inst.pc)];
      State next = state;
      Instance& moved = next.instances[n];
      if (step.kind == ClientStep::Kind::kBegin) {
        const auto alts = TryBegin(*op_paths_[static_cast<std::size_t>(op)],
                                   next.marking);
        if (!alts.has_value()) {
          continue;
        }
        moved.open.push_back({op, *alts});
        op_began_[static_cast<std::size_t>(op)] = true;
      } else {
        auto open = moved.open.rbegin();
        while (open != moved.open.rend() && open->op != op) {
          ++open;
        }
        assert(open != moved.open.rend() && "validated script lost its open begin");
        ApplyEnd(*op_paths_[static_cast<std::size_t>(op)], open->alts, next.marking);
        moved.open.erase(std::next(open).base());
      }
      ++moved.pc;
      if (moved.pc == static_cast<int>(script.steps.size())) {
        next.instances.erase(next.instances.begin() + static_cast<std::ptrdiff_t>(n));
      }
      add_edge(std::move(next), {step.kind == ClientStep::Kind::kBegin, step.op, -1, ""},
               false, static_cast<int>(n));
    }

    // A fresh client arrives and performs its script's first Begin.
    for (std::size_t s = 0; s < scripts_.size(); ++s) {
      int active = 0;
      for (const Instance& inst : state.instances) {
        active += inst.script == static_cast<int>(s) ? 1 : 0;
      }
      if (active >= scripts_[s].max_instances) {
        continue;
      }
      const int op = script_step_ops_[s][0];
      State next = state;
      const auto alts = TryBegin(*op_paths_[static_cast<std::size_t>(op)],
                                 next.marking);
      if (!alts.has_value()) {
        continue;
      }
      op_began_[static_cast<std::size_t>(op)] = true;
      Instance inst;
      inst.script = static_cast<int>(s);
      inst.pc = 1;
      inst.open.push_back({op, *alts});
      if (inst.pc < static_cast<int>(scripts_[s].steps.size())) {
        next.instances.push_back(std::move(inst));
      }
      add_edge(std::move(next), {true, scripts_[s].steps.front().op, -1, ""}, true,
               static_cast<int>(s));
    }

    // Wedge test. The instance bound only limits exploration; a state counts as
    // wedged only if no *unbounded* fresh arrival could fire either — which is
    // exactly "no script entry operation is fireable".
    const bool fresh_could_fire = (fireable & entry_ops_) != 0;
    if (!any_enabled && !fresh_could_fire) {
      result.safety = SafetyVerdict::kDeadlockable;
      result.counterexample = BuildCounterexample(i);
      result.states = states_.size();
      result.transitions = transitions_;
      return result;
    }
  }

  result.safety = SafetyVerdict::kDeadlockFree;
  result.states = states_.size();
  result.transitions = transitions_;
  for (std::size_t op = 0; op < op_names_.size(); ++op) {
    if (!op_began_[op]) {
      result.unreachable_ops.push_back(op_names_[op]);
    }
  }
  FindStarvableOps(&result);
  return result;
}

// Flags op o when the subgraph of states with o unfireable contains a reachable cycle
// touching a state where a client waits for o (an active instance blocked at o, or o
// is a script entry point — fresh clients keep arriving). Along such a cycle o is
// never eligible at any re-evaluation instant, so no selection rule — longest-waiting
// included — can admit it. Uses Tarjan's SCC over the filtered successor relation.
void Checker::FindStarvableOps(ModelCheckResult* result) const {
  const int n = static_cast<int>(states_.size());
  for (std::size_t op = 0; op < op_names_.size(); ++op) {
    const std::uint64_t bit = std::uint64_t{1} << op;
    const bool entry = (entry_ops_ & bit) != 0;
    auto in_subgraph = [&](int s) {
      return (fireable_[static_cast<std::size_t>(s)] & bit) == 0;
    };

    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    int next_index = 0;
    bool starvable = false;

    struct Frame {
      int node;
      std::size_t child;
    };
    for (int root = 0; root < n && !starvable; ++root) {
      if (!in_subgraph(root) || index[static_cast<std::size_t>(root)] != -1) {
        continue;
      }
      std::vector<Frame> frames{{root, 0}};
      while (!frames.empty() && !starvable) {
        Frame& frame = frames.back();
        const auto node = static_cast<std::size_t>(frame.node);
        if (frame.child == 0) {
          index[node] = low[node] = next_index++;
          stack.push_back(frame.node);
          on_stack[node] = true;
        }
        if (frame.child < succs_[node].size()) {
          const int next = succs_[node][frame.child++];
          const auto next_z = static_cast<std::size_t>(next);
          if (!in_subgraph(next)) {
            continue;
          }
          if (index[next_z] == -1) {
            frames.push_back({next, 0});
          } else if (on_stack[next_z]) {
            low[node] = std::min(low[node], index[next_z]);
          }
          continue;
        }
        if (low[node] == index[node]) {
          // Pop one SCC; nontrivial (size >= 2) SCCs are cycles — transitions always
          // change the state, so self-loops cannot occur.
          std::vector<int> scc;
          int popped;
          do {
            popped = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(popped)] = false;
            scc.push_back(popped);
          } while (popped != frame.node);
          if (scc.size() >= 2) {
            bool waited = entry;
            for (const int s : scc) {
              waited = waited || (waiting_[static_cast<std::size_t>(s)] & bit) != 0;
            }
            starvable = starvable || waited;
          }
        }
        const int low_here = low[node];
        frames.pop_back();
        if (!frames.empty()) {
          const auto parent = static_cast<std::size_t>(frames.back().node);
          low[parent] = std::min(low[parent], low_here);
        }
      }
    }
    if (starvable) {
      result->starvable_ops.push_back(op_names_[op]);
    }
  }
}

}  // namespace

ClientScript SimpleCall(const std::string& op, int max_instances) {
  ClientScript script;
  script.name = op;
  script.max_instances = max_instances;
  script.steps = {{ClientStep::Kind::kBegin, op}, {ClientStep::Kind::kEnd, op}};
  return script;
}

std::string Counterexample::ToString() const {
  std::ostringstream os;
  for (const CounterexampleStep& step : word) {
    os << (step.begin ? "begin(" : "end(") << step.op << ")";
    if (step.client >= 0) {
      os << "@" << step.script << "#" << step.client;
    }
    os << " ";
  }
  os << "-> wedged; blocked: {";
  for (std::size_t i = 0; i < blocked_ops.size(); ++i) {
    os << (i == 0 ? "" : ", ") << blocked_ops[i];
  }
  os << "}";
  return os.str();
}

const char* SafetyVerdictName(SafetyVerdict verdict) {
  switch (verdict) {
    case SafetyVerdict::kDeadlockFree:
      return "deadlock-free";
    case SafetyVerdict::kDeadlockable:
      return "DEADLOCKABLE";
    case SafetyVerdict::kBoundExceeded:
      return "bound-exceeded";
  }
  return "?";
}

std::string ModelCheckResult::Summary() const {
  std::ostringstream os;
  os << SafetyVerdictName(safety);
  if (guard_dependent) {
    os << " (modulo guards)";
  }
  os << " (" << states << " states)";
  if (safety == SafetyVerdict::kDeadlockable) {
    os << "; " << counterexample.ToString();
  }
  if (!unreachable_ops.empty()) {
    os << "; unreachable: {";
    for (std::size_t i = 0; i < unreachable_ops.size(); ++i) {
      os << (i == 0 ? "" : ", ") << unreachable_ops[i];
    }
    os << "}";
  }
  if (!starvable_ops.empty()) {
    os << "; starvable: {";
    for (std::size_t i = 0; i < starvable_ops.size(); ++i) {
      os << (i == 0 ? "" : ", ") << starvable_ops[i];
    }
    os << "}";
  }
  return os.str();
}

ModelCheckResult CheckPathModel(const PathModel& model) {
  return Checker(model).Run();
}

}  // namespace syneval
