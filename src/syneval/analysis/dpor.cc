#include "syneval/analysis/dpor.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/virtual_disk.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/dining_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/sync/semaphore.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/trace/recorder.h"

namespace syneval {

const char* DporVerdictName(DporVerdict verdict) {
  switch (verdict) {
    case DporVerdict::kProvedDeadlockFree:
      return "proved_deadlock_free";
    case DporVerdict::kCounterexample:
      return "counterexample";
    case DporVerdict::kBoundExceeded:
      return "bound_exceeded";
  }
  return "unknown";
}

namespace {

// Checked on completed runs only; "" means clean.
using OracleFn = std::function<std::string()>;

// Constructs the cell's solution and workload on the given runtime. The returned
// oracle closure owns (via shared_ptr captures) everything that must outlive the
// run — solution, thread handles, auxiliary state like the virtual disk.
using TrialBody = std::function<OracleFn(DetRuntime&, TraceRecorder&)>;

DporRunner MakeRunner(TrialBody body) {
  return [body = std::move(body)](const std::vector<std::uint32_t>& prefix,
                                  const DporOptions& options) {
    DetRuntime::Options rt_options;
    rt_options.max_steps = options.max_steps;
    auto schedule = std::make_unique<GuidedSchedule>(prefix);
    GuidedSchedule* guided = schedule.get();
    DetRuntime runtime(std::move(schedule), rt_options);
    AnomalyDetector detector;
    runtime.AttachAnomalyDetector(&detector);
    // Sized so tiny DPOR workloads never evict (eviction would hole the footprints;
    // the explorer degrades to bound_exceeded if it ever happens).
    FlightRecorder::Options flight_options;
    flight_options.rings = 8;
    flight_options.events_per_ring = 2048;
    FlightRecorder flight(flight_options);
    runtime.AttachFlightRecorder(&flight);
    // Deliberately NOT bridged into the flight recorder: op-label trace events would
    // only add spurious footprint dependences.
    TraceRecorder trace;
    const OracleFn oracle = body(runtime, trace);
    const DetRuntime::RunResult result = runtime.Run();

    DporRun run;
    run.decisions = guided->decisions();
    run.diverged = guided->diverged();
    run.events = flight.Snapshot();
    run.evicted = flight.evicted();
    run.completed = result.completed;
    run.deadlocked = result.deadlocked;
    run.step_limit = result.step_limit;
    run.steps = result.steps;
    run.report = result.report;
    run.anomalies = detector.counts().total();
    run.anomaly_report = detector.Report();
    if (result.completed && oracle) {
      run.oracle = oracle();
    }
    run.hb = AnalyzeHappensBefore(run.events, &flight);
    if (!result.completed) {
      const Postmortem postmortem = BuildPostmortem(flight, &detector);
      run.postmortem_cause = postmortem.cause;
      run.postmortem = postmortem.ToText();
    }
    return run;
  };
}

// ---------------------------------------------------------------------------------
// Seeded-bug primitives.
// ---------------------------------------------------------------------------------

// A deliberately broken bounded buffer: producers and consumers share ONE condition
// variable and signal with NotifyOne. The waits are proper while-loops, so the bug
// is not a missing retest: a consumer's NotifyOne after freeing a slot can be
// delivered to another consumer queued ahead of the blocked producer; the woken
// consumer finds the buffer empty and re-waits, the signal is consumed, and the
// system deadlocks with free space and items still to deposit — a stolen signal.
class StolenSignalBuffer : public BoundedBufferIface {
 public:
  StolenSignalBuffer(Runtime& runtime, int capacity)
      : capacity_(capacity), mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()) {
    if (AnomalyDetector* det = runtime.anomaly_detector()) {
      const std::string name =
          det->RegisterResource(this, ResourceKind::kLock, "StolenSignalBuffer");
      det->RegisterResource(mu_.get(), ResourceKind::kLock, name + ".mu");
      det->RegisterResource(cv_.get(), ResourceKind::kCondition, name + ".cv");
    }
    if (FlightRecorder* flight = runtime.flight_recorder()) {
      const std::string name = flight->RegisterName(this, "StolenSignalBuffer");
      flight->RegisterName(mu_.get(), name + ".mu");
      flight->RegisterName(cv_.get(), name + ".cv");
    }
  }

  void Deposit(std::int64_t item, OpScope* scope) override {
    if (scope != nullptr) {
      scope->Arrived();
    }
    RtLock lock(*mu_);
    while (static_cast<int>(items_.size()) >= capacity_) {
      cv_->Wait(*mu_);
    }
    if (scope != nullptr) {
      scope->Entered();
    }
    items_.push_back(item);
    if (scope != nullptr) {
      scope->Exited();
    }
    cv_->NotifyOne();
  }

  std::int64_t Remove(OpScope* scope) override {
    if (scope != nullptr) {
      scope->Arrived();
    }
    RtLock lock(*mu_);
    while (items_.empty()) {
      cv_->Wait(*mu_);
    }
    if (scope != nullptr) {
      scope->Entered();
    }
    const std::int64_t item = items_.front();
    items_.pop_front();
    if (scope != nullptr) {
      scope->Exited(item);
    }
    cv_->NotifyOne();
    return item;
  }

  int capacity() const override { return capacity_; }

 private:
  const int capacity_;
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  std::deque<std::int64_t> items_;
};

// ---------------------------------------------------------------------------------
// The exploration tree.
// ---------------------------------------------------------------------------------

// Resources in footprints are identified by their first-appearance index in the
// run's flight-event stream, NOT by pointer. Pointers are only unique within one
// run: every guided execution allocates a fresh runtime and solution, so comparing
// a footprint captured in an earlier sibling run against the current run's by
// address would compare unrelated heap layouts (and drift with allocator state,
// making exploration nondeterministic). First-appearance indices are reproducible:
// replaying the same decision prefix replays the same event stream, so two runs
// sharing a prefix assign identical ids to every resource the prefix touches —
// exactly the cross-run comparisons sleep-set inheritance needs.
using ResourceId = std::uint32_t;

// One scheduling decision of a run, annotated for partial-order reasoning: the
// footprint is the set of resources the chosen thread's slice touched, and the
// transition clock `vc` encodes happens-before between slices (slice i happens
// before slice j iff vc_j[thread_i] >= thread_index_i).
struct Slice {
  std::uint32_t thread = 0;
  std::uint32_t thread_index = 0;  // 1-based count of this thread's slices so far.
  std::vector<ResourceId> footprint;  // Sorted, deduplicated.
  VectorClock vc;
};

bool FootprintsIntersect(const std::vector<ResourceId>& a,
                         const std::vector<ResourceId>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

// Groups flight events by scheduler step (DetRuntime stamps time_nanos = step*1000
// and a slice runs entirely at the step of the decision that granted it), then
// threads per-object clocks through the slices. Joining the clock of every object
// in the footprint captures all conservative dependence edges, including
// write-after-read chains, because the object clock always holds the last
// toucher's full clock.
std::vector<Slice> BuildSlices(const DporRun& run) {
  // Canonicalize resource pointers to first-appearance ids (see ResourceId above).
  // run.events is already in global recording-seq order.
  std::map<const void*, ResourceId> canonical;
  std::map<std::uint64_t, std::vector<ResourceId>> by_step;
  for (const FlightEvent& event : run.events) {
    const auto [it, inserted] = canonical.emplace(
        event.resource, static_cast<ResourceId>(canonical.size()));
    by_step[event.time_nanos / 1000].push_back(it->second);
  }
  std::vector<Slice> slices;
  slices.reserve(run.decisions.size());
  std::map<std::uint32_t, std::uint32_t> slice_count;
  std::map<ResourceId, VectorClock> object_clock;
  std::map<std::uint32_t, VectorClock> thread_clock;
  for (const GuidedSchedule::Decision& decision : run.decisions) {
    Slice slice;
    slice.thread = decision.chosen;
    slice.thread_index = ++slice_count[decision.chosen];
    auto it = by_step.find(decision.step);
    if (it != by_step.end()) {
      std::sort(it->second.begin(), it->second.end());
      it->second.erase(std::unique(it->second.begin(), it->second.end()),
                       it->second.end());
      slice.footprint = it->second;
    }
    VectorClock vc = thread_clock[slice.thread];
    for (const ResourceId object : slice.footprint) {
      vc.Join(object_clock[object]);
    }
    vc.Set(slice.thread, slice.thread_index);
    for (const ResourceId object : slice.footprint) {
      object_clock[object] = vc;
    }
    thread_clock[slice.thread] = vc;
    slice.vc = std::move(vc);
    slices.push_back(std::move(slice));
  }
  return slices;
}

// slices[i] happens-before slices[j]; call with i < j only.
bool SliceHb(const std::vector<Slice>& slices, std::size_t i, std::size_t j) {
  return slices[j].vc.Get(slices[i].thread) >= slices[i].thread_index;
}

// One node of the exploration tree: the state reached by the decision prefix above
// it. `backtrack` accumulates the source-set obligations discovered by race
// analysis; `explored` records finished choices with the footprint their first
// slice had (any sibling exploration starts from this same state, so the footprint
// is choice-invariant); `sleep` is the inherited sleep set — choices proved covered
// by an earlier sibling of an ancestor, skipped unless a dependent slice wakes them.
struct Node {
  std::vector<std::uint32_t> enabled;
  std::uint32_t chosen = 0;
  std::vector<ResourceId> footprint;  // Footprint of `chosen`'s slice, current run.
  std::set<std::uint32_t> backtrack;
  std::map<std::uint32_t, std::vector<ResourceId>> explored;
  std::map<std::uint32_t, std::vector<ResourceId>> sleep;
};

struct ExploreStats {
  std::uint64_t executions = 0;
  std::uint64_t redundant = 0;
  std::uint64_t transitions = 0;
  std::uint64_t max_depth = 0;
  std::uint64_t certified_wakeups = 0;
  std::uint64_t hb_joins = 0;
  bool exhausted = false;  // Tree fully explored within the budget.
  std::string note;        // Degradation reason when neither exhausted nor failed.
  bool has_counterexample = false;
  DporCounterexample counterexample;
};

// Stateless exploration driver shared by the DPOR explorer (`reduced`) and the
// naive enumerator (backtrack = every enabled thread, no sleep sets, no race
// analysis). Returns on the first counterexample, on a degradation, on budget
// exhaustion, or with `exhausted` set once the (reduced) tree is fully visited.
ExploreStats Explore(const DporCell& cell, const DporOptions& options, bool reduced,
                     std::uint64_t budget) {
  ExploreStats stats;
  std::vector<Node> stack;
  std::vector<std::uint32_t> prefix;
  while (true) {
    if (stats.executions >= budget) {
      return stats;
    }
    const DporRun run = cell.run(prefix, options);
    ++stats.executions;

    if (run.diverged) {
      stats.note = "guided replay diverged from the recorded prefix";
      return stats;
    }
    if (run.evicted > 0) {
      stats.note = "flight recorder evicted events; footprints incomplete";
      return stats;
    }
    stats.transitions += run.decisions.size();
    stats.max_depth = std::max<std::uint64_t>(stats.max_depth, run.decisions.size());
    stats.certified_wakeups += run.hb.certified_wakeups;
    stats.hb_joins += run.hb.joins;

    // Judge the execution.
    std::string reason;
    std::string detail;
    if (run.deadlocked) {
      reason = "deadlock";
      detail = run.report;
    } else if (run.step_limit) {
      stats.note = "per-execution step budget exhausted";
      return stats;
    } else if (!run.hb.uncertified.empty()) {
      reason = "uncertified-wakeup";
      detail = run.hb.uncertified.front().detail;
    } else if (!run.hb.races.empty()) {
      reason = "client-race";
      detail = run.hb.races.front().detail;
    } else if (!run.oracle.empty()) {
      reason = "oracle";
      detail = run.oracle;
    }
    if (!reason.empty()) {
      stats.has_counterexample = true;
      stats.counterexample.reason = reason;
      stats.counterexample.detail = detail;
      stats.counterexample.prefix.clear();
      for (const GuidedSchedule::Decision& decision : run.decisions) {
        stats.counterexample.prefix.push_back(decision.chosen);
      }
      return stats;
    }

    const std::vector<Slice> slices = BuildSlices(run);
    const std::size_t depth = slices.size();

    // Retain the prefix nodes (deterministic replay makes them identical runs
    // apart), refreshing the footprint of the one whose choice changed.
    for (std::size_t d = 0; d < stack.size() && d < depth; ++d) {
      stack[d].footprint = slices[d].footprint;
    }
    bool redundant = false;
    for (std::size_t d = stack.size(); d < depth; ++d) {
      Node node;
      node.enabled = run.decisions[d].candidates;
      node.chosen = run.decisions[d].chosen;
      node.footprint = slices[d].footprint;
      node.backtrack.insert(node.chosen);
      if (!reduced) {
        for (const std::uint32_t thread : node.enabled) {
          node.backtrack.insert(thread);
        }
      } else if (d > 0) {
        // Sleep inheritance: a sibling-covered choice stays asleep while only
        // slices independent of it execute (its own next transition is unchanged,
        // so re-running it would revisit a covered trace).
        const Node& parent = stack[d - 1];
        auto inherit = [&node, &parent](
                           const std::map<std::uint32_t, std::vector<ResourceId>>&
                               source) {
          for (const auto& [thread, footprint] : source) {
            if (!FootprintsIntersect(footprint, parent.footprint)) {
              node.sleep[thread] = footprint;
            }
          }
        };
        inherit(parent.sleep);
        inherit(parent.explored);
      }
      if (reduced && node.sleep.count(node.chosen) != 0) {
        // The beyond-prefix fallback scheduler cannot consult sleep sets, so a run
        // can wander into a covered trace; it is counted, and its race analysis
        // below is still sound (it only adds backtrack obligations).
        redundant = true;
      }
      stack.push_back(std::move(node));
    }
    if (redundant) {
      ++stats.redundant;
    }

    if (reduced) {
      // Race analysis: for every reversible race (dependent slices of different
      // threads, adjacent in happens-before), plant a backtrack obligation at the
      // state before the first slice, choosing from the initials of the suffix
      // that is not ordered after it (source-set DPOR).
      for (std::size_t j = 0; j < depth; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
          if (slices[i].thread == slices[j].thread ||
              !FootprintsIntersect(slices[i].footprint, slices[j].footprint)) {
            continue;
          }
          bool immediate = true;
          for (std::size_t k = i + 1; k < j && immediate; ++k) {
            if (SliceHb(slices, i, k) && SliceHb(slices, k, j)) {
              immediate = false;
            }
          }
          if (!immediate) {
            continue;
          }
          // v = the slices between i and j not happens-after i, then j itself.
          std::vector<std::size_t> v;
          for (std::size_t k = i + 1; k < j; ++k) {
            if (!SliceHb(slices, i, k)) {
              v.push_back(k);
            }
          }
          v.push_back(j);
          // Initials of v: threads whose first slice in v has no happens-before
          // predecessor within v; each could run first at the state before i.
          std::set<std::uint32_t> initials;
          for (std::size_t x = 0; x < v.size(); ++x) {
            bool has_pred = false;
            for (std::size_t y = 0; y < x && !has_pred; ++y) {
              has_pred = SliceHb(slices, v[y], v[x]);
            }
            if (!has_pred) {
              initials.insert(slices[v[x]].thread);
            }
          }
          Node& node = stack[i];
          bool covered = false;
          for (const std::uint32_t thread : initials) {
            if (node.backtrack.count(thread) != 0) {
              covered = true;
              break;
            }
          }
          if (covered || initials.empty()) {
            continue;
          }
          const std::uint32_t preferred = slices[j].thread;
          const std::uint32_t add =
              initials.count(preferred) != 0 ? preferred : *initials.begin();
          if (std::find(node.enabled.begin(), node.enabled.end(), add) !=
              node.enabled.end()) {
            node.backtrack.insert(add);
          } else {
            // An initial the footprints could not prove enabled here (a dependence
            // edge invisible to the flight recorder, e.g. thread spawn): fall back
            // to a full persistent set at this node. Conservative, never unsound.
            for (const std::uint32_t thread : node.enabled) {
              node.backtrack.insert(thread);
            }
          }
        }
      }
    }

    // Advance: finish the deepest run, then backtrack to the deepest node with an
    // unexplored, non-sleeping obligation and re-run with its choice swapped in.
    bool advanced = false;
    while (!stack.empty()) {
      Node& node = stack.back();
      node.explored[node.chosen] = node.footprint;
      bool found = false;
      std::uint32_t next = 0;
      for (const std::uint32_t thread : node.backtrack) {
        if (node.explored.count(thread) == 0 && node.sleep.count(thread) == 0) {
          next = thread;
          found = true;
          break;
        }
      }
      if (found) {
        node.chosen = next;
        prefix.clear();
        prefix.reserve(stack.size());
        for (const Node& n : stack) {
          prefix.push_back(n.chosen);
        }
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) {
      stats.exhausted = true;
      return stats;
    }
  }
}

// ---------------------------------------------------------------------------------
// The cell catalog.
// ---------------------------------------------------------------------------------

void AddCell(std::vector<DporCell>& suite, Mechanism mechanism, std::string problem,
             std::string display, bool seeded_bug, TrialBody body) {
  DporCell cell;
  cell.mechanism = mechanism;
  cell.problem = std::move(problem);
  cell.display = std::move(display);
  cell.seeded_bug = seeded_bug;
  cell.run = MakeRunner(std::move(body));
  suite.push_back(std::move(cell));
}

// Workload bounds are deliberately tiny: DPOR is exhaustive, so the number of
// Mazurkiewicz traces — not seeds — is the budget. Each cell keeps at least two
// client threads per role so the interesting contention exists at all.
BufferWorkloadParams DporBufferParams() {
  BufferWorkloadParams params;
  params.producers = 1;
  params.consumers = 1;
  params.items_per_producer = 2;
  params.work = 1;
  return params;
}

RwWorkloadParams DporRwParams() {
  RwWorkloadParams params;
  // One reader, one writer. Adding a second reader makes the tree intractable
  // (> 500k Mazurkiewicz traces measured even with zero in-section work): every RW op
  // is TWO monitor regions (entry protocol + exit protocol), so three threads contend
  // on one mutex with four critical sections apiece — the combinatorial wall. Two
  // reader ops against one writer op still drives every wait/signal path of the
  // priority protocol; reader *concurrency* is covered by the randomized sweeps.
  params.readers = 1;
  params.writers = 1;
  params.ops_per_reader = 2;
  params.ops_per_writer = 1;
  params.read_work = 0;
  params.write_work = 0;
  params.think_work = 0;
  return params;
}

FcfsWorkloadParams DporFcfsParams(int ops_per_thread) {
  FcfsWorkloadParams params;
  params.threads = 2;
  params.ops_per_thread = ops_per_thread;
  params.hold_work = 1;
  params.think_work = 0;
  return params;
}

DiskWorkloadParams DporDiskParams() {
  DiskWorkloadParams params;
  params.requesters = 2;
  params.requests_per_thread = 1;
  params.tracks = 8;
  params.hold_work = 1;
  params.think_work = 0;
  return params;
}

DiningWorkloadParams DporDiningParams() {
  DiningWorkloadParams params;
  params.meals_per_philosopher = 1;
  params.eat_work = 1;
  params.think_work = 0;
  return params;
}

template <typename Buffer>
TrialBody BoundedBufferBody(int capacity) {
  return [capacity](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    auto buffer = std::make_shared<Buffer>(runtime, capacity);
    auto threads = std::make_shared<ThreadList>(
        SpawnBoundedBufferWorkload(runtime, *buffer, trace, DporBufferParams()));
    return [buffer, threads, capacity, &trace] {
      return CheckBoundedBuffer(trace.Events(), capacity);
    };
  };
}

template <typename Buffer>
TrialBody OneSlotBody() {
  return [](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    auto buffer = std::make_shared<Buffer>(runtime);
    auto threads = std::make_shared<ThreadList>(
        SpawnOneSlotBufferWorkload(runtime, *buffer, trace, DporBufferParams()));
    return [buffer, threads, &trace] { return CheckOneSlotBuffer(trace.Events()); };
  };
}

template <typename Rw>
TrialBody RwBody() {
  return [](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    auto rw = std::make_shared<Rw>(runtime);
    auto threads = std::make_shared<ThreadList>(
        SpawnReadersWritersWorkload(runtime, *rw, trace, DporRwParams()));
    return [rw, threads, &trace] {
      return CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority, 8,
                                 RwStrictness::kStrict);
    };
  };
}

template <typename Fcfs>
TrialBody FcfsBody(int ops_per_thread) {
  return [ops_per_thread](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    auto resource = std::make_shared<Fcfs>(runtime);
    auto threads = std::make_shared<ThreadList>(
        SpawnFcfsWorkload(runtime, *resource, trace, DporFcfsParams(ops_per_thread)));
    return [resource, threads, &trace] { return CheckFcfsResource(trace.Events()); };
  };
}

template <typename Scheduler>
TrialBody DiskBody() {
  return [](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    const DiskWorkloadParams params = DporDiskParams();
    auto scheduler = std::make_shared<Scheduler>(runtime, 0);
    auto disk = std::make_shared<VirtualDisk>(params.tracks, 0);
    auto threads = std::make_shared<ThreadList>(
        SpawnDiskWorkload(runtime, *scheduler, *disk, trace, params));
    return [scheduler, disk, threads, &trace] {
      return disk->violations() != 0
                 ? std::string("virtual disk observed concurrent access")
                 : CheckScanDiskSchedule(trace.Events(), 0);
    };
  };
}

template <typename Table>
TrialBody DiningBody(int seats) {
  return [seats](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    auto table = std::make_shared<Table>(runtime, seats);
    auto threads = std::make_shared<ThreadList>(
        SpawnDiningWorkload(runtime, *table, trace, DporDiningParams()));
    return [table, threads, seats, &trace] {
      return CheckDiningPhilosophers(trace.Events(), seats);
    };
  };
}

// Two threads incrementing an instrumented SharedCell, optionally under a binary
// semaphore. The guarded variant proves race-freedom through the HB engine's lock
// edges; the unguarded variant is the seeded client-race demonstration.
TrialBody CounterBody(bool guarded) {
  return [guarded](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    (void)trace;
    constexpr int kThreads = 2;
    constexpr int kIncrementsPerThread = 2;
    auto counter = std::make_shared<SharedCell<std::int64_t>>(runtime, "counter");
    auto guard = guarded
                     ? std::make_shared<BinarySemaphore>(runtime, /*initially_open=*/true)
                     : nullptr;
    auto threads = std::make_shared<ThreadList>();
    for (int t = 0; t < kThreads; ++t) {
      threads->push_back(
          runtime.StartThread("inc" + std::to_string(t), [&runtime, counter, guard] {
            for (int i = 0; i < kIncrementsPerThread; ++i) {
              if (guard != nullptr) {
                guard->P();
              }
              const std::int64_t value = counter->Load();
              SpinWork(runtime, 1);
              counter->Store(value + 1);
              if (guard != nullptr) {
                guard->V();
              }
            }
          }));
    }
    return [counter, guard, threads] {
      return counter->Peek() == kThreads * kIncrementsPerThread
                 ? std::string()
                 : std::string("lost update: counter != ") +
                       std::to_string(kThreads * kIncrementsPerThread);
    };
  };
}

TrialBody StolenSignalBody() {
  return [](DetRuntime& runtime, TraceRecorder& trace) -> OracleFn {
    // 1 producer x 2 items, 2 consumers x 1 item, capacity 1: the smallest shape
    // where a consumer's wake-signal can be stolen by the other consumer while the
    // producer is the thread that needed it.
    BufferWorkloadParams params;
    params.producers = 1;
    params.consumers = 2;
    params.items_per_producer = 2;
    params.work = 0;
    auto buffer = std::make_shared<StolenSignalBuffer>(runtime, 1);
    auto threads = std::make_shared<ThreadList>(
        SpawnBoundedBufferWorkload(runtime, *buffer, trace, params));
    return [buffer, threads, &trace] { return CheckBoundedBuffer(trace.Events(), 1); };
  };
}

}  // namespace

std::vector<DporCell> BuildDporSuite() {
  std::vector<DporCell> suite;
  AddCell(suite, Mechanism::kSemaphore, "bounded-buffer",
          "Split-semaphore bounded buffer (cap 1)", false,
          BoundedBufferBody<SemaphoreBoundedBuffer>(1));
  AddCell(suite, Mechanism::kMonitor, "bounded-buffer", "Monitor bounded buffer (cap 1)",
          false, BoundedBufferBody<MonitorBoundedBuffer>(1));
  AddCell(suite, Mechanism::kSemaphore, "one-slot-buffer", "Semaphore one-slot buffer",
          false, OneSlotBody<SemaphoreOneSlotBuffer>());
  AddCell(suite, Mechanism::kConditionalRegion, "one-slot-buffer", "CCR one-slot buffer",
          false, OneSlotBody<CcrOneSlotBuffer>());
  AddCell(suite, Mechanism::kMonitor, "rw-readers-priority", "Monitor readers-priority",
          false, RwBody<MonitorRwReadersPriority>());
  AddCell(suite, Mechanism::kSerializer, "rw-readers-priority",
          "Serializer readers-priority", false, RwBody<SerializerRwReadersPriority>());
  AddCell(suite, Mechanism::kSemaphore, "fcfs-resource", "FIFO-semaphore FCFS resource",
          false, FcfsBody<SemaphoreFcfsResource>(/*ops_per_thread=*/2));
  // The serializer's internal queue events make its tree an order of magnitude
  // bigger per op; one op per thread keeps it exhaustively provable.
  AddCell(suite, Mechanism::kSerializer, "fcfs-resource", "Serializer FCFS resource",
          false, FcfsBody<SerializerFcfsResource>(/*ops_per_thread=*/1));
  AddCell(suite, Mechanism::kMonitor, "disk-scan", "Monitor SCAN disk scheduler", false,
          DiskBody<MonitorDiskScheduler>());
  AddCell(suite, Mechanism::kSerializer, "disk-scan", "Serializer SCAN disk scheduler",
          false, DiskBody<SerializerDiskScheduler>());
  AddCell(suite, Mechanism::kSemaphore, "dining", "Ordered-fork dining (2 seats)", false,
          DiningBody<SemaphoreDiningOrdered>(2));
  AddCell(suite, Mechanism::kMonitor, "dining", "Monitor dining (2 seats)", false,
          DiningBody<MonitorDining>(2));
  AddCell(suite, Mechanism::kSemaphore, "shared-counter", "Semaphore-guarded counter",
          false, CounterBody(/*guarded=*/true));

  // Seeded-bug demonstration cells: DPOR must find a counterexample for each.
  AddCell(suite, Mechanism::kSemaphore, "dining", "Naive dining (seeded deadlock)", true,
          DiningBody<SemaphoreDiningNaive>(2));
  AddCell(suite, Mechanism::kMonitor, "bounded-buffer",
          "Single-condvar buffer (seeded stolen signal)", true, StolenSignalBody());
  AddCell(suite, Mechanism::kSemaphore, "shared-counter",
          "Unguarded counter (seeded race)", true, CounterBody(/*guarded=*/false));
  return suite;
}

DporCellResult ExploreCell(const DporCell& cell, const DporOptions& options) {
  DporCellResult result;
  result.mechanism = cell.mechanism;
  result.problem = cell.problem;
  result.display = cell.display;
  result.seeded_bug = cell.seeded_bug;
#if !SYNEVAL_TELEMETRY_ENABLED
  result.verdict = DporVerdict::kBoundExceeded;
  result.note = "telemetry disabled: no flight footprints, exploration skipped";
  return result;
#else
  const ExploreStats stats =
      Explore(cell, options, /*reduced=*/true, options.max_executions);
  result.executions = stats.executions;
  result.redundant = stats.redundant;
  result.transitions = stats.transitions;
  result.max_depth = stats.max_depth;
  result.certified_wakeups = stats.certified_wakeups;
  result.hb_joins = stats.hb_joins;
  if (stats.has_counterexample) {
    result.verdict = DporVerdict::kCounterexample;
    result.has_counterexample = true;
    result.counterexample = stats.counterexample;
  } else if (stats.exhausted) {
    result.verdict = DporVerdict::kProvedDeadlockFree;
    if (options.run_naive_baseline) {
      // Budget the baseline so the ratio is meaningful even when DPOR needed more
      // runs than the default naive cap.
      const std::uint64_t naive_budget = std::max<std::uint64_t>(
          options.naive_max_executions, 2 * result.executions + 1);
      const ExploreStats naive = Explore(cell, options, /*reduced=*/false, naive_budget);
      result.naive_executions = naive.executions;
      result.naive_complete = naive.exhausted;
      if (result.executions > 0) {
        result.reduction_ratio =
            static_cast<double>(naive.executions) / static_cast<double>(result.executions);
      }
    }
  } else {
    result.verdict = DporVerdict::kBoundExceeded;
    result.note = stats.note.empty() ? "execution budget exhausted" : stats.note;
  }
  return result;
#endif
}

DporSuiteResult ExploreDporSuite(const std::vector<DporCell>& suite,
                                 const DporOptions& options,
                                 const ParallelOptions& parallel) {
  DporSuiteResult result;
  result.cells.resize(suite.size());
  std::vector<DporCellResult>& cells = result.cells;
  // One pool task per cell; tasks write disjoint slots, so the merged result is
  // positionally identical for any worker count.
  const auto trial = [&suite, &cells, &options](std::uint64_t seed) {
    const std::size_t index = static_cast<std::size_t>(seed - 1);
    cells[index] = ExploreCell(suite[index], options);
    return TrialReport{};
  };
  // The pool is used only for parallelism here: cell results are SIDE EFFECTS of the
  // trial (written into `cells` by index) and the folded TrialReports are empty. A
  // checkpoint-restored chunk would skip the trial and leave its cells unexplored, so
  // checkpointing is stripped even when the caller sweeps everything else with it.
  ParallelOptions pool = parallel;
  pool.checkpoint = nullptr;
  pool.checkpoint_scope.clear();
  const ParallelSweepResult sweep = ParallelSweepSchedules(
      static_cast<int>(suite.size()), std::function<TrialReport(std::uint64_t)>(trial),
      /*base_seed=*/1, pool);
  result.jobs = sweep.jobs;
  result.wall_seconds = sweep.wall_seconds;
  result.workers = sweep.workers;
  return result;
}

DporReplay ReplayDporCounterexample(const DporCell& cell,
                                    const std::vector<std::uint32_t>& prefix,
                                    const DporOptions& options) {
  const DporRun run = cell.run(prefix, options);
  DporReplay replay;
  replay.completed = run.completed;
  replay.deadlocked = run.deadlocked;
  replay.diverged = run.diverged;
  replay.steps = run.steps;
  replay.anomalies = run.anomalies;
  replay.anomaly_report = run.anomaly_report;
  replay.postmortem_cause = run.postmortem_cause;
  replay.postmortem = run.postmortem;
  replay.oracle = run.oracle;
  replay.hb = run.hb;
  return replay;
}

}  // namespace syneval
