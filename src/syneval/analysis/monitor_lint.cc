#include "syneval/analysis/monitor_lint.h"

#include <algorithm>
#include <set>

namespace syneval {

const char* WaitSemanticsName(WaitSemantics semantics) {
  switch (semantics) {
    case WaitSemantics::kHoare:
      return "hoare";
    case WaitSemantics::kMesa:
      return "mesa";
    case WaitSemantics::kCcr:
      return "ccr";
  }
  return "?";
}

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

std::vector<LintFinding> LintMonitorModel(const MonitorModel& model) {
  std::vector<LintFinding> findings;
  auto add = [&](LintSeverity severity, std::string rule, std::string message) {
    findings.push_back({severity, std::move(rule), std::move(message)});
  };

  std::set<std::string> waited;
  std::set<std::string> signalled;
  for (const WaitSite& wait : model.waits) {
    waited.insert(wait.condition);
  }
  for (const SignalSite& signal : model.signals) {
    signalled.insert(signal.condition);
  }

  for (const WaitSite& wait : model.waits) {
    if (!wait.loop && model.semantics == WaitSemantics::kMesa) {
      add(LintSeverity::kError, "mesa-nonloop-wait",
          "wait on '" + wait.condition + "' for (" + wait.predicate +
              ") is not re-tested in a loop; under Mesa semantics the predicate may "
              "be false again when the waiter runs");
    }
    if (!wait.loop && model.semantics == WaitSemantics::kHoare) {
      add(LintSeverity::kNote, "hoare-nonloop-wait",
          "wait on '" + wait.condition + "' for (" + wait.predicate +
              ") relies on Hoare signal handoff; porting to Mesa semantics would "
              "silently break it");
    }
    if (model.semantics != WaitSemantics::kCcr &&
        signalled.find(wait.condition) == signalled.end()) {
      add(LintSeverity::kError, "never-signalled",
          "condition '" + wait.condition +
              "' is waited on but signalled on no path: waiters block forever");
    }
  }

  for (const SignalSite& signal : model.signals) {
    if (waited.find(signal.condition) == waited.end()) {
      add(LintSeverity::kWarning, "dead-signal",
          "condition '" + signal.condition +
              "' is signalled but nothing ever waits on it");
    }
    if (!signal.broadcast && !signal.cascades && signal.max_eligible > 1) {
      add(LintSeverity::kError, "single-signal-multi-waiter",
          "signal on '" + signal.condition + "' may leave " +
              std::to_string(signal.max_eligible - 1) +
              " eligible waiter(s) blocked: use broadcast or cascade the wakeup");
    }
    if (signal.broadcast && signal.max_eligible <= 1) {
      add(LintSeverity::kNote, "broadcast-single-waiter",
          "broadcast on '" + signal.condition +
              "' wakes every waiter though at most one is eligible (thundering "
              "herd)");
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return static_cast<int>(a.severity) > static_cast<int>(b.severity);
                   });
  return findings;
}

}  // namespace syneval
