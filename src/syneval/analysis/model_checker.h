// Path-expression model checker: exhaustive bounded enumeration of the counter-state
// space of a compiled path program, run BEFORE any thread is spawned.
//
// The dynamic machinery of this repository (SweepSchedules + the anomaly detector) can
// show that a deadlock exists — it samples schedules — but never that one doesn't. This
// checker closes that gap for path expressions: because PathController prologues fire
// atomically on explicit counters (compiler.h), the whole synchronization behaviour of a
// path program is a finite transition system over markings, exactly a bounded Petri-net
// reachability problem. Enumerating it exhaustively turns the paper's qualitative
// matrix entries into machine-checked verdicts.
//
// The model: clients execute *scripts* — fixed begin/end sequences over path operations
// (e.g. Figure 1's WRITE = writeattempt{requestwrite{openwrite}} ; write) — so nested
// synchronization-procedure calls, the source of hold-and-wait, are modelled faithfully.
// A state is (marking, active script instances); transitions are
//   * an active instance advancing one step (a Begin fires its whole prologue
//     atomically, or an End fires its epilogues — epilogues never block), or
//   * a fresh instance of a script performing its first Begin (clients keep arriving).
// The operation-multiset bound caps *concurrent* instances per script (not sequential
// re-invocations), which keeps the space finite.
//
// Verdicts (soundness/completeness caveats in docs/STATIC_ANALYSIS.md):
//   * kDeadlockable — a reachable state exists where no transition is enabled (fresh
//     arrivals included, ignoring the instance bound): every client, present or future,
//     blocks forever. The minimal counterexample word (BFS order) is replayable under
//     DetRuntime — see replay.h.
//   * kDeadlockFree — no such state within the bounds.
//   * unreachable_ops — operations whose prologue never fired on any explored edge.
//   * starvable_ops — operations o for which some reachable cycle keeps o's prologue
//     unfireable at every state while a client waits for o: even Bloom's
//     longest-waiting selection rule cannot admit it (it is never eligible at any
//     re-evaluation instant), so o can starve. Conversely, an op with no such cycle is
//     starvation-free under the longest-waiting rule within the explored bounds.
//
// Guards ([p] predicates, the Andler extension) reference host state the checker cannot
// see; they are treated optimistically (assumed true). Programs containing guards get
// guard_dependent = true and every verdict is "modulo guards".

#ifndef SYNEVAL_ANALYSIS_MODEL_CHECKER_H_
#define SYNEVAL_ANALYSIS_MODEL_CHECKER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "syneval/pathexpr/compiler.h"

namespace syneval {

// One step of a client script: begin or end one path operation. An End matches the most
// recent un-ended Begin of the same operation within the same instance.
struct ClientStep {
  enum class Kind { kBegin, kEnd };
  Kind kind = Kind::kBegin;
  std::string op;
};

// A named client behaviour: the exact begin/end sequence one logical thread performs.
struct ClientScript {
  std::string name;
  std::vector<ClientStep> steps;
  // Operation-multiset bound: maximum *concurrent* active instances of this script.
  int max_instances = 2;
};

// The trivial script "call op once": [Begin(op), End(op)].
ClientScript SimpleCall(const std::string& op, int max_instances = 2);

// A path program plus its client structure — everything the checker needs.
struct PathModel {
  std::string name;     // Display name (usually the solution's).
  std::string program;  // One or more "path ... end" declarations.
  // Empty => one SimpleCall script per operation mentioned in the program.
  std::vector<ClientScript> scripts;
  // Exploration cap; exceeding it yields kBoundExceeded, never a wrong verdict.
  std::size_t max_states = 200000;
};

// The event word leading to a wedged state, plus the operations clients are stuck at.
// Each step is attributed to a logical client (instances numbered in spawn order) so a
// replay can reconstruct which client holds which open operations — the hold-and-wait
// structure the anomaly detector needs to name the cycle.
struct CounterexampleStep {
  bool begin = true;
  std::string op;
  int client = -1;     // Logical client performing the event (spawn order).
  std::string script;  // Name of the script that client runs.
};

// A mid-script client stuck at its next Begin in the wedged state.
struct BlockedClient {
  int client = -1;
  std::string script;
  std::string op;
};

struct Counterexample {
  std::vector<CounterexampleStep> word;      // All events fire immediately, in order.
  std::vector<BlockedClient> blocked_clients;  // Clients wedged mid-script.
  std::vector<std::string> blocked_ops;  // Unfireable at the wedged state (union of
                                         // the clients' next ops and script entries).

  // "begin(geta)@ab#0 begin(getb)@ba#1 -> wedged; blocked: {geta, getb}".
  std::string ToString() const;
};

enum class SafetyVerdict {
  kDeadlockFree,   // No wedged state reachable within the bounds.
  kDeadlockable,   // Wedged state found; `counterexample` is its minimal witness.
  kBoundExceeded,  // max_states hit before the space was exhausted: inconclusive.
};

const char* SafetyVerdictName(SafetyVerdict verdict);

struct ModelCheckResult {
  SafetyVerdict safety = SafetyVerdict::kDeadlockFree;
  bool guard_dependent = false;  // Program has [p] guards: verdicts hold modulo guards.
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::vector<std::string> unreachable_ops;
  std::vector<std::string> starvable_ops;
  Counterexample counterexample;  // Meaningful only when kDeadlockable.

  // One line, e.g. "deadlock-free (312 states); starvable: {openwrite}".
  std::string Summary() const;
};

// Parses, compiles and exhaustively checks `model`. Throws PathSyntaxError on a
// malformed program and std::invalid_argument on a malformed script (unknown
// operation, End with no matching Begin, script not starting with a Begin).
ModelCheckResult CheckPathModel(const PathModel& model);

}  // namespace syneval

#endif  // SYNEVAL_ANALYSIS_MODEL_CHECKER_H_
