// Analysis models for the registered solutions, and the registry-wide driver.
//
// Path-expression solutions are checked exhaustively: each gets a PathModel whose
// program is the solution's own (via its Program() accessor, so the analyzed text can
// never drift from the executed text) and whose client scripts transcribe the
// solution's synchronization procedures — e.g. Figure 1's WRITE performs
// writeattempt{requestwrite{openwrite}} before write, which is exactly where its
// hold-and-wait lives. Monitor and CCR solutions get declarative MonitorModels
// (hand-transcribed from the solution sources, one WaitSite/SignalSite per syntactic
// site) for the wait-predicate lint. Semaphore, serializer and CSP solutions have no
// static model yet; AnalyzeRegistry reports them as uncovered rather than guessing.

#ifndef SYNEVAL_ANALYSIS_CATALOG_H_
#define SYNEVAL_ANALYSIS_CATALOG_H_

#include <string>
#include <vector>

#include "syneval/analysis/model_checker.h"
#include "syneval/analysis/monitor_lint.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

struct PathModelEntry {
  Mechanism mechanism = Mechanism::kPathExpression;
  std::string problem;
  PathModel model;  // model.name is the registry display name.
};

struct MonitorModelEntry {
  Mechanism mechanism = Mechanism::kMonitor;
  std::string problem;
  MonitorModel model;  // model.name is the registry display name.
};

// Models for every path-expression solution in the registry (8 entries).
std::vector<PathModelEntry> RegistryPathModels();

// Models for every monitor and CCR solution in the registry (22 entries).
std::vector<MonitorModelEntry> RegistryMonitorModels();

// A deliberately-broken pair of path gates with crossed acquisition order: script "ab"
// holds geta while asking for getb, script "ba" the reverse. The checker finds the
// 2-event wedge word, and replaying it demonstrates a real deadlock (see replay.h) —
// the end-to-end fixture for the static→dynamic cross-validation.
PathModel BrokenCrossedGatesModel();

// One registry solution's static verdict: exactly one of the two passes applies.
struct SolutionVerdict {
  Mechanism mechanism = Mechanism::kPathExpression;
  std::string problem;
  std::string display_name;
  bool is_path = false;             // True: `model` is set; false: `findings` is.
  ModelCheckResult model;           // Model-checker result (path solutions).
  WaitSemantics semantics = WaitSemantics::kMesa;  // Lint semantics (monitor/CCR).
  std::vector<LintFinding> findings;               // Lint findings (monitor/CCR).
  // Path: deadlock-free within bounds, nothing unreachable or starvable.
  // Monitor/CCR: no error-severity finding.
  bool statically_safe = false;

  // One table cell, e.g. "deadlock-free, starvable: {requestwrite}" or "2 notes".
  std::string VerdictString() const;
};

// Runs both passes over every modelled registry solution, in registry order.
std::vector<SolutionVerdict> AnalyzeRegistry();

}  // namespace syneval

#endif  // SYNEVAL_ANALYSIS_CATALOG_H_
