#include "syneval/analysis/hb.h"

#include <deque>
#include <map>
#include <sstream>

namespace syneval {

namespace {

// Simulated condition-variable wait set, mirroring DetCondVar: FIFO delivery to the
// first queued waiter on NotifyOne, everyone on NotifyAll. A delivery carries the
// signaller's clock; the waiter joins it at its notified kWake.
struct CvState {
  struct QueuedWaiter {
    std::uint32_t thread = 0;
  };
  std::deque<QueuedWaiter> queue;
  // thread -> clock of the signal delivered to it (consumed by its next kWake).
  std::map<std::uint32_t, VectorClock> delivered;
  // Deliveries whose target turned out to have timed out before collecting them
  // (simulation/runtime divergence only possible with timed waits). Re-matchable by
  // any later notified wake so timeouts never produce false violations.
  std::vector<VectorClock> orphaned;
};

std::string ResourceName(const FlightRecorder* names, const void* resource) {
  if (names != nullptr) {
    return names->NameOf(resource);
  }
  std::ostringstream os;
  os << resource;
  return os.str();
}

// One recorded client access, kept per cell for the pairwise race check.
struct ClientAccess {
  std::uint32_t thread = 0;
  std::uint64_t seq = 0;
  bool store = false;
  bool atomic = false;
  VectorClock clock;  // The accessing thread's clock at the access.
};

}  // namespace

HbAnalysis AnalyzeHappensBefore(const std::vector<FlightEvent>& events,
                                const FlightRecorder* names) {
  HbAnalysis analysis;
  std::map<std::uint32_t, VectorClock> clocks;         // Per-thread clocks.
  std::map<const void*, VectorClock> release_clocks;   // Mutex: latest kRelease.
  std::map<const void*, bool> has_acquire;             // Resource shape classification.
  std::map<const void*, CvState> cvs;
  std::map<const void*, std::vector<ClientAccess>> cells;

  // Classification pass: a resource with kAcquire/kRelease traffic is a mutex (or a
  // mutex-like handoff); one with signal traffic or notified wakes is a condition
  // variable. The sets are disjoint for DetRuntime/OsRuntime primitives. Resources
  // with only kBlock/kWake and neither shape (e.g. join queues) need no clock edges.
  std::map<const void*, bool> is_cv;
  for (const FlightEvent& event : events) {
    switch (event.type) {
      case FlightEventType::kAcquire:
      case FlightEventType::kRelease:
        has_acquire[event.resource] = true;
        break;
      case FlightEventType::kSignal:
      case FlightEventType::kBroadcast:
        is_cv[event.resource] = true;
        break;
      case FlightEventType::kWake:
        if (event.arg == 1) {
          is_cv[event.resource] = true;
        }
        break;
      default:
        break;
    }
  }

  auto clock_of = [&clocks](std::uint32_t thread) -> VectorClock& {
    VectorClock& clock = clocks[thread];
    return clock;
  };

  for (const FlightEvent& event : events) {
    VectorClock& clock = clock_of(event.thread);
    clock.Bump(event.thread);
    switch (event.type) {
      case FlightEventType::kAcquire: {
        auto it = release_clocks.find(event.resource);
        if (it != release_clocks.end()) {
          clock.Join(it->second);
          ++analysis.joins;
        }
        break;
      }
      case FlightEventType::kRelease:
        release_clocks[event.resource] = clock;
        break;
      case FlightEventType::kBlock:
        if (is_cv.count(event.resource) != 0 && has_acquire.count(event.resource) == 0) {
          cvs[event.resource].queue.push_back({event.thread});
        }
        break;
      case FlightEventType::kSignal: {
        auto it = cvs.find(event.resource);
        if (it != cvs.end() && !it->second.queue.empty()) {
          const std::uint32_t target = it->second.queue.front().thread;
          it->second.queue.pop_front();
          it->second.delivered[target] = clock;
        }
        break;
      }
      case FlightEventType::kBroadcast: {
        auto it = cvs.find(event.resource);
        if (it != cvs.end()) {
          for (const CvState::QueuedWaiter& waiter : it->second.queue) {
            it->second.delivered[waiter.thread] = clock;
          }
          it->second.queue.clear();
        }
        break;
      }
      case FlightEventType::kWake: {
        if (is_cv.count(event.resource) == 0 || has_acquire.count(event.resource) != 0) {
          break;  // Mutex wake: the following kAcquire carries the HB edge.
        }
        CvState& cv = cvs[event.resource];
        if (event.arg == 1) {
          auto it = cv.delivered.find(event.thread);
          if (it != cv.delivered.end()) {
            clock.Join(it->second);
            cv.delivered.erase(it);
            ++analysis.joins;
            ++analysis.certified_wakeups;
          } else if (!cv.orphaned.empty()) {
            // A delivery the simulation mis-addressed to a timed-out waiter; this
            // wake is the runtime's actual recipient.
            clock.Join(cv.orphaned.back());
            cv.orphaned.pop_back();
            ++analysis.joins;
            ++analysis.certified_wakeups;
          } else {
            HbWakeupViolation violation;
            violation.thread = event.thread;
            violation.resource = event.resource;
            violation.seq = event.seq;
            std::ostringstream os;
            os << "thread " << event.thread << " woke notified on "
               << ResourceName(names, event.resource) << " (seq " << event.seq
               << ") but no signal delivery is happens-before ordered to it";
            violation.detail = os.str();
            analysis.uncertified.push_back(std::move(violation));
          }
        } else {
          // Deadline wake: no causal edge. If the simulation had already delivered a
          // signal to this thread, the runtime must have skipped it as timed out —
          // orphan the delivery for the waiter the runtime actually chose.
          ++analysis.timeout_wakeups;
          auto it = cv.delivered.find(event.thread);
          if (it != cv.delivered.end()) {
            cv.orphaned.push_back(std::move(it->second));
            cv.delivered.erase(it);
          }
        }
        // Whether notified or timed out, the thread has left the wait set.
        for (auto it = cv.queue.begin(); it != cv.queue.end(); ++it) {
          if (it->thread == event.thread) {
            cv.queue.erase(it);
            break;
          }
        }
        break;
      }
      case FlightEventType::kClientLoad:
      case FlightEventType::kClientStore: {
        ++analysis.client_accesses;
        ClientAccess access;
        access.thread = event.thread;
        access.seq = event.seq;
        access.store = event.type == FlightEventType::kClientStore;
        access.atomic = event.arg == 1;
        access.clock = clock;
        std::vector<ClientAccess>& history = cells[event.resource];
        for (const ClientAccess& prior : history) {
          if (prior.thread == access.thread || (!prior.store && !access.store) ||
              prior.atomic || access.atomic) {
            continue;
          }
          if (!prior.clock.LessEq(access.clock)) {
            HbRace race;
            race.cell = event.resource;
            race.first_thread = prior.thread;
            race.second_thread = access.thread;
            race.first_seq = prior.seq;
            race.second_seq = access.seq;
            std::ostringstream os;
            os << "unordered " << (prior.store ? "store" : "load") << " (thread "
               << prior.thread << ", seq " << prior.seq << ") and "
               << (access.store ? "store" : "load") << " (thread " << access.thread
               << ", seq " << access.seq << ") on "
               << ResourceName(names, event.resource);
            race.detail = os.str();
            analysis.races.push_back(std::move(race));
          }
        }
        history.push_back(std::move(access));
        break;
      }
      default:
        break;
    }
  }
  return analysis;
}

}  // namespace syneval
