// Vector-clock happens-before engine over flight-recorder traces.
//
// The DPOR explorer (analysis/dpor.h) drives DetRuntime through every sync-relevant
// interleaving of a cell; this engine certifies each explored execution. It replays
// the flight events of one run (telemetry/flight_recorder.h) through per-thread
// vector clocks, mirroring DetRuntime's primitive semantics exactly:
//
//   * Mutexes: kAcquire joins the clock published by the mutex's latest kRelease.
//     Release clocks are monotone along a mutex's critical-section chain, so joining
//     only the latest release yields the full transitive ordering.
//   * Condition variables: the engine simulates the wait set the runtime maintains —
//     kBlock enqueues the waiter, kSignal delivers to the front waiter (kBroadcast to
//     all) and stores the signaller's clock as that waiter's pending delivery, and a
//     kWake with arg==1 ("woken by notification") must find a pending delivery to
//     join. A notified wake with no delivered signal is an *uncertified wakeup*: the
//     runtime claims a notification happened that the happens-before order cannot
//     account for (a lost/stolen signal made visible structurally, not by sampling).
//   * Client state: kClientLoad/kClientStore events (recorded by SharedCell below)
//     are checked pairwise — two accesses to the same cell from different threads,
//     at least one a plain store, with neither clock ordered before the other, are
//     reported as data races.
//
// Timed waits make the simulation conservative rather than exact: a waiter whose
// deadline fired can be skipped by the runtime's NotifyOne while the simulation still
// has it queued. Orphaned deliveries are therefore re-matchable (never reported as
// violations), so the engine has no false positives on traces with timeouts; on the
// timeout-free traces DPOR explores it is exact. Formulation follows the vector-clock
// treatment in Aspnes' notes on logical clocks.

#ifndef SYNEVAL_ANALYSIS_HB_H_
#define SYNEVAL_ANALYSIS_HB_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "syneval/runtime/runtime.h"
#include "syneval/telemetry/flight_recorder.h"

namespace syneval {

// Grow-on-demand vector clock indexed by thread id. Thread ids are small dense
// integers under both runtimes, so a flat vector beats a map.
class VectorClock {
 public:
  std::uint64_t Get(std::uint32_t thread) const {
    return thread < c_.size() ? c_[thread] : 0;
  }

  void Set(std::uint32_t thread, std::uint64_t value) {
    if (c_.size() <= thread) {
      c_.resize(thread + 1, 0);
    }
    c_[thread] = value;
  }

  void Bump(std::uint32_t thread) { Set(thread, Get(thread) + 1); }

  // Component-wise maximum.
  void Join(const VectorClock& other) {
    if (c_.size() < other.c_.size()) {
      c_.resize(other.c_.size(), 0);
    }
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      if (other.c_[i] > c_[i]) {
        c_[i] = other.c_[i];
      }
    }
  }

  // True when this clock is component-wise <= other (this happens-before-or-equals
  // other). Strict happens-before for distinct events follows because clocks of
  // distinct events are never equal (each event bumps its own component).
  bool LessEq(const VectorClock& other) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.Get(static_cast<std::uint32_t>(i))) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> c_;
};

// A notified wake the happens-before order cannot certify: no signal delivery maps
// to it in the simulated wait set.
struct HbWakeupViolation {
  std::uint32_t thread = 0;
  const void* resource = nullptr;
  std::uint64_t seq = 0;  // Global seq of the offending kWake event.
  std::string detail;
};

// Two conflicting client accesses unordered by happens-before.
struct HbRace {
  const void* cell = nullptr;
  std::uint32_t first_thread = 0;
  std::uint32_t second_thread = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t second_seq = 0;
  std::string detail;
};

struct HbAnalysis {
  std::uint64_t joins = 0;              // HB edges applied (acquire + wake joins).
  std::uint64_t certified_wakeups = 0;  // Notified wakes matched to a delivery.
  std::uint64_t timeout_wakeups = 0;    // Deadline wakes (arg==0 on a condvar).
  std::uint64_t client_accesses = 0;    // kClientLoad/kClientStore events seen.
  std::vector<HbWakeupViolation> uncertified;
  std::vector<HbRace> races;

  bool clean() const { return uncertified.empty() && races.empty(); }
};

// Replays `events` (a FlightRecorder::Snapshot(), already in global seq order)
// through the vector-clock machinery. `names`, when given, resolves resource
// pointers to display names in violation/race details.
HbAnalysis AnalyzeHappensBefore(const std::vector<FlightEvent>& events,
                                const FlightRecorder* names = nullptr);

// A shared scalar belonging to *client* problem state, instrumented so its accesses
// enter the flight recorder (and therefore DPOR footprints and the race check).
// Plain Load/Store model unsynchronized client accesses and are race-checked;
// Atomic* accesses model deliberate lock-free coordination — they still create DPOR
// dependences (arg==1 marks them) but are exempt from race reports. The value lives
// in a std::atomic either way, so even a trace the checker flags as racy is
// UB-free at the C++ level.
template <typename T>
class SharedCell {
 public:
  SharedCell(Runtime& runtime, const char* name, T initial = T{})
      : runtime_(runtime), value_(initial) {
    if (FlightRecorder* flight = runtime_.flight_recorder()) {
      flight->RegisterName(this, name);
    }
  }

  SharedCell(const SharedCell&) = delete;
  SharedCell& operator=(const SharedCell&) = delete;

  T Load() {
    RecordAccess(FlightEventType::kClientLoad, /*atomic=*/false);
    return value_.load(std::memory_order_relaxed);
  }

  void Store(T value) {
    RecordAccess(FlightEventType::kClientStore, /*atomic=*/false);
    value_.store(value, std::memory_order_relaxed);
  }

  T AtomicLoad() {
    RecordAccess(FlightEventType::kClientLoad, /*atomic=*/true);
    return value_.load(std::memory_order_seq_cst);
  }

  void AtomicStore(T value) {
    RecordAccess(FlightEventType::kClientStore, /*atomic=*/true);
    value_.store(value, std::memory_order_seq_cst);
  }

  T AtomicAdd(T delta) {
    RecordAccess(FlightEventType::kClientStore, /*atomic=*/true);
    return value_.fetch_add(delta, std::memory_order_seq_cst);
  }

  // Unrecorded read for oracles that inspect the final value after the run, from
  // the (unmanaged) driver thread where CurrentThreadId() is unavailable.
  T Peek() const { return value_.load(std::memory_order_seq_cst); }

 private:
  void RecordAccess(FlightEventType type, bool atomic) {
    if (FlightRecorder* flight = runtime_.flight_recorder()) {
      flight->Record(runtime_.CurrentThreadId(), type, this, runtime_.NowNanos(),
                     atomic ? 1 : 0);
    }
  }

  Runtime& runtime_;
  std::atomic<T> value_;
};

}  // namespace syneval

#endif  // SYNEVAL_ANALYSIS_HB_H_
