// Wait-predicate lint for monitor / conditional-critical-region solutions.
//
// Monitors cannot be model-checked the way path expressions can — their guard
// predicates live in arbitrary shared variables — but the *shape* of the
// condition-variable protocol is statically checkable, in the spirit of AutoSynch's
// wait-predicate analysis. Each solution registers a small declarative description of
// its waits (condition, guard predicate, whether the wait is wrapped in a re-test
// loop) and its signals (condition, signal vs broadcast, how many waiters may be
// eligible when it fires, whether woken waiters cascade the signal onward). The lint
// then checks protocol rules that depend only on that structure:
//
//   mesa-nonloop-wait          error    `if (!p) wait` under Mesa semantics: the
//                                       predicate may be false again by the time the
//                                       waiter runs (signal is a hint, not a handoff).
//   hoare-nonloop-wait         note     `if`-wait is *correct* under Hoare handoff
//                                       semantics but breaks silently if the monitor
//                                       is ever ported to Mesa; flagged for awareness.
//   never-signalled            error    A condition some site waits on is signalled on
//                                       no path: waiters can only leave via spurious
//                                       wakeups. CCR models are exempt — regions
//                                       implicitly re-test every queued predicate at
//                                       each region exit (see ccr/critical_region.h).
//   dead-signal                warning  A condition is signalled but nothing ever
//                                       waits on it.
//   single-signal-multi-waiter error    A site where several waiters may be eligible
//                                       fires a single Signal without broadcast or a
//                                       wakeup cascade: all but one eligible waiter
//                                       stay blocked (classic lost-wakeup shape).
//   broadcast-single-waiter    note     Broadcast where at most one waiter can be
//                                       eligible: correct but thundering-herd-prone.

#ifndef SYNEVAL_ANALYSIS_MONITOR_LINT_H_
#define SYNEVAL_ANALYSIS_MONITOR_LINT_H_

#include <string>
#include <vector>

namespace syneval {

enum class WaitSemantics {
  kHoare,  // Signal hands the monitor to the waiter immediately (monitor.h default).
  kMesa,   // Signal is a hint; waiter re-acquires later and must re-test.
  kCcr,    // Conditional critical regions: implicit re-test at every region exit.
};

const char* WaitSemanticsName(WaitSemantics semantics);

// One syntactic wait in the solution.
struct WaitSite {
  std::string condition;  // Condition variable (or CCR queue) name.
  std::string predicate;  // The guard, as written, e.g. "count > 0"; for messages.
  bool loop = true;       // Wait wrapped in `while (!predicate)`.
  int max_waiters = 1;    // Threads that can be blocked here at once.
};

// One syntactic signal/broadcast in the solution.
struct SignalSite {
  std::string condition;
  bool broadcast = false;
  int max_eligible = 1;   // Waiters whose predicates may hold when this fires.
  bool cascades = false;  // A woken waiter re-signals, forming a wakeup chain.
};

struct MonitorModel {
  std::string name;
  WaitSemantics semantics = WaitSemantics::kMesa;
  std::vector<WaitSite> waits;
  std::vector<SignalSite> signals;
};

enum class LintSeverity { kNote, kWarning, kError };

const char* LintSeverityName(LintSeverity severity);

struct LintFinding {
  LintSeverity severity = LintSeverity::kNote;
  std::string rule;  // Rule id, e.g. "mesa-nonloop-wait".
  std::string message;
};

// Runs every rule; findings come back sorted most-severe first.
std::vector<LintFinding> LintMonitorModel(const MonitorModel& model);

}  // namespace syneval

#endif  // SYNEVAL_ANALYSIS_MONITOR_LINT_H_
