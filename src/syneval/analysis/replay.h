// Replays a static deadlock counterexample as a real execution under DetRuntime.
//
// This is the cross-validation half of the static analyzer: a counterexample produced
// by the model checker is a claim about the *model*; replaying it through the actual
// PathController under the deterministic runtime, with the anomaly detector attached,
// turns it into a demonstrated runtime deadlock (or exposes a checker bug).
//
// How the replay works: the counterexample word is a sequence of begin/end events that
// all fire without blocking (each was an enabled transition in the model, and the
// controller's first-fireable-alternative rule makes its choices a deterministic
// function of the marking — the same function the checker simulated). One managed
// thread per logical client performs that client's slice of the word, serialized by a
// global turn counter, then blocks at its wedging Begin; extra one-shot threads probe
// blocked entry operations no mid-script client covers. Every such Begin is unfireable
// at the wedged marking, so the runtime ends with blocked threads and no runnable ones
// — exactly DetRuntime's deadlock condition. Each client also mirrors its open
// operations onto synthetic per-operation semaphore resources (acquire on Begin,
// release on End, block at the wedge), because the controller's own queue resource has
// no holders and therefore can never exhibit a wait-for *cycle* to the detector; the
// semaphores expose the real hold-and-wait structure, and
// AnomalyDetector::DiagnoseStuck names the cycle through the operations themselves.
//
// Guards are registered as constantly-true host predicates, matching the checker's
// optimistic treatment: the replay validates the counter structure, not guard logic.

#ifndef SYNEVAL_ANALYSIS_REPLAY_H_
#define SYNEVAL_ANALYSIS_REPLAY_H_

#include <cstdint>
#include <string>

#include "syneval/analysis/model_checker.h"
#include "syneval/anomaly/anomaly.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/parallel_sweep.h"

namespace syneval {

struct ReplayResult {
  bool deadlocked = false;        // DetRuntime found blocked threads, none runnable.
  std::uint64_t steps = 0;        // Scheduling steps taken.
  std::string runtime_report;     // DetRuntime's stuck report (empty if completed).
  AnomalyCounts anomalies;        // Detector counts; expect anomalies.deadlocks >= 1.
  std::string anomaly_report;     // Detector's named wait-for cycles.
};

// Replays `cex` (from CheckPathModel(model), safety == kDeadlockable) against the real
// PathController. The seed only varies scheduling noise around the deterministic word;
// any seed must reproduce the deadlock. Throws PathSyntaxError if the program in
// `model` is malformed.
ReplayResult ReplayCounterexample(const PathModel& model, const Counterexample& cex,
                                  std::uint64_t seed = 1);

// Sweeps the replay across `num_seeds` schedule seeds, sharded over `parallel`
// workers: each seed's replay is an independent DetRuntime run (see above — any seed
// must reproduce the deadlock), so a trial passes only when the runtime deadlocks AND
// the detector names at least one wait-for cycle. The returned outcome counts seeds
// whose replay did NOT deadlock as failures with a replayable seed list, and is
// bit-identical to the serial sweep at any worker count.
SweepOutcome ReplayCounterexampleSweep(const PathModel& model, const Counterexample& cex,
                                       int num_seeds, std::uint64_t base_seed = 1,
                                       const ParallelOptions& parallel = {});

}  // namespace syneval

#endif  // SYNEVAL_ANALYSIS_REPLAY_H_
