#include "syneval/analysis/replay.h"

#include <cstddef>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "syneval/anomaly/detector.h"
#include "syneval/pathexpr/controller.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"

namespace syneval {

namespace {

// What one replay thread does: fire its slice of the word in global order, then (if the
// checker says this client wedges mid-script) block at its next operation.
struct ClientPlan {
  std::string script;
  std::vector<std::size_t> events;  // Indices into cex.word, ascending.
  std::string wedge_op;             // Empty if this client completed its script.
};

}  // namespace

ReplayResult ReplayCounterexample(const PathModel& model, const Counterexample& cex,
                                  std::uint64_t seed) {
  AnomalyDetector detector;
  DetRuntime rt(MakeRandomSchedule(seed));
  rt.AttachAnomalyDetector(&detector);

  PathController controller(rt, model.program);
  for (const std::string& predicate : controller.compiled().predicate_names) {
    controller.RegisterPredicate(predicate, [] { return true; });
  }

  // The controller registers itself as a single kQueue resource, and queue waits carry
  // no holder — two threads stuck inside it look like mutually-unhelpable peers, never
  // a deadlock cycle. The hold-and-wait structure lives in the *operations*: a client
  // inside begin(op)..end(op) holds op while it waits for the next one. Mirror that by
  // giving every operation a synthetic semaphore resource and reporting acquire /
  // release / block transitions alongside the real controller calls; the detector then
  // names the genuine cycle (client A holds geta, waits getb; B holds getb, waits geta).
  std::map<std::string, char> op_cookies;
  auto cookie = [&op_cookies](const std::string& op) { return &op_cookies.at(op); };
  {
    for (const CounterexampleStep& step : cex.word) op_cookies[step.op] = 0;
    for (const BlockedClient& client : cex.blocked_clients) op_cookies[client.op] = 0;
    for (const std::string& op : cex.blocked_ops) op_cookies[op] = 0;
    for (auto& [op, cell] : op_cookies) {
      detector.RegisterResource(&cell, ResourceKind::kSemaphore, "path:" + op);
    }
  }

  // One replay thread per logical client from the counterexample attribution.
  std::map<int, ClientPlan> plans;
  for (std::size_t g = 0; g < cex.word.size(); ++g) {
    ClientPlan& plan = plans[cex.word[g].client];
    plan.script = cex.word[g].script;
    plan.events.push_back(g);
  }
  for (const BlockedClient& client : cex.blocked_clients) {
    ClientPlan& plan = plans[client.client];
    plan.script = client.script;
    plan.wedge_op = client.op;
  }

  // Blocked *entry* operations with no mid-script client attached represent fresh
  // arrivals that could never get in; probe them with one-shot threads. This also
  // covers wedges reachable by the empty word (vacuously unfireable entries).
  std::vector<std::string> arrival_ops;
  for (const std::string& op : cex.blocked_ops) {
    bool covered = false;
    for (const BlockedClient& client : cex.blocked_clients) {
      covered = covered || client.op == op;
    }
    if (!covered) arrival_ops.push_back(op);
  }

  // Global turn counter serializes the word across clients. Spinning threads Yield, so
  // they stay runnable until their event index comes up; DetRuntime's random schedule
  // only permutes the interleaving of the spins, never the event order.
  std::size_t turn = 0;
  std::vector<std::unique_ptr<RtThread>> threads;
  for (auto& [id, plan] : plans) {
    ClientPlan* p = &plan;
    std::string name = "client#" + std::to_string(id) +
                       (p->script.empty() ? "" : ":" + p->script);
    threads.push_back(rt.StartThread(std::move(name), [&, p] {
      const std::uint32_t self = rt.CurrentThreadId();
      std::vector<std::pair<std::string, PathController::Token>> open;
      for (const std::size_t g : p->events) {
        while (turn != g) rt.Yield();
        const CounterexampleStep& step = cex.word[g];
        if (step.begin) {
          open.emplace_back(step.op, controller.Begin(step.op));
          detector.OnAcquire(self, cookie(step.op));
        } else {
          // Match the most recent un-ended Begin of the same op, as the checker does.
          for (auto it = open.rbegin(); it != open.rend(); ++it) {
            if (it->first == step.op) {
              detector.OnRelease(self, cookie(step.op));
              controller.End(step.op, it->second);
              open.erase(std::next(it).base());
              break;
            }
          }
        }
        turn = g + 1;
      }
      if (!p->wedge_op.empty()) {
        while (turn != cex.word.size()) rt.Yield();
        // Outermost wait record = the operation; the controller's queue wait nests
        // inside it. DiagnoseStuck classifies by the outermost record.
        detector.OnBlock(self, cookie(p->wedge_op));
        const PathController::Token token = controller.Begin(p->wedge_op);  // Wedges.
        controller.End(p->wedge_op, token);
      }
    }));
  }
  for (const std::string& op : arrival_ops) {
    threads.push_back(rt.StartThread("arrival:" + op, [&, op] {
      const std::uint32_t self = rt.CurrentThreadId();
      while (turn != cex.word.size()) rt.Yield();
      detector.OnBlock(self, cookie(op));
      const PathController::Token token = controller.Begin(op);  // Wedges.
      controller.End(op, token);
    }));
  }

  const DetRuntime::RunResult run = rt.Run();

  ReplayResult result;
  result.deadlocked = run.deadlocked;
  result.steps = run.steps;
  result.runtime_report = run.report;
  result.anomalies = detector.counts();
  result.anomaly_report = detector.Report("; ");
  return result;
}

SweepOutcome ReplayCounterexampleSweep(const PathModel& model, const Counterexample& cex,
                                       int num_seeds, std::uint64_t base_seed,
                                       const ParallelOptions& parallel) {
  // Each trial builds its own runtime/controller/detector from (model, cex, seed), so
  // the sweep is safe to shard; the model and counterexample are only read.
  return SweepSchedules(
      num_seeds,
      std::function<TrialReport(std::uint64_t)>(
          [&model, &cex](std::uint64_t seed) -> TrialReport {
            const ReplayResult replay = ReplayCounterexample(model, cex, seed);
            TrialReport report;
            report.anomalies = replay.anomalies;
            report.anomaly_report = replay.anomaly_report;
            if (!replay.deadlocked) {
              report.message = "replay did not deadlock: " + replay.runtime_report;
            } else if (replay.anomalies.deadlocks < 1) {
              report.message =
                  "replay deadlocked but the detector named no cycle: " +
                  replay.anomaly_report;
            }
            return report;
          }),
      base_seed, parallel);
}

}  // namespace syneval
