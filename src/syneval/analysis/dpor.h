// Stateless dynamic partial-order reduction (DPOR) over the Schedule seam.
//
// The explorer drives DetRuntime through *every* synchronization-relevant
// interleaving of a (problem, mechanism, bound) cell, pruned by sleep sets and
// source-set/persistent-set backtracking [Flanagan & Godefroid 2005; Abdulla et al.
// 2014], and certifies each explored execution with the vector-clock happens-before
// engine (analysis/hb.h). The unit of reordering is the *slice*: everything one
// thread does between two scheduling decisions of the cooperative runtime. Because
// mechanisms in this repository synchronize exclusively through Runtime primitives,
// the scheduling decisions recorded by GuidedSchedule cover every sync-relevant
// choice, and a decision prefix replayed through a fresh DetRuntime reproduces the
// same state — the property the whole exploration rests on.
//
// Dependence between slices is derived from flight-recorder footprints: two slices
// of different threads are dependent iff they touched a common resource (mutex,
// condition variable, CCR guard queue, or an instrumented SharedCell). That is
// conservative — it may order slices the semantics would allow to commute — so the
// reduction is sound: the explorer visits at least one representative of every
// Mazurkiewicz trace reachable within the bound. Each execution is then judged:
//
//   * deadlock (DetRuntime found blocked threads with none runnable),
//   * an uncertified wakeup or client-state race from the HB engine,
//   * an oracle violation on the recorded trace of a completed run,
//
// any of which yields a *counterexample*: the decision prefix (a thread-id list)
// that deterministically replays the failing execution. Cells with none of these
// across the whole reduced tree are *proved* deadlock-free (and oracle-clean) for
// their bound. A naive enumerator over the same seam provides the unreduced
// execution count, so every verdict carries its reduction ratio.

#ifndef SYNEVAL_ANALYSIS_DPOR_H_
#define SYNEVAL_ANALYSIS_DPOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "syneval/analysis/hb.h"
#include "syneval/runtime/parallel_sweep.h"
#include "syneval/runtime/schedule.h"
#include "syneval/solutions/solution_info.h"
#include "syneval/telemetry/flight_recorder.h"

namespace syneval {

struct DporOptions {
  // DPOR execution budget per cell; exhaustion yields kBoundExceeded. The default
  // covers the largest tree in the built-in suite (monitor readers-priority, ~42k
  // reduced executions) with headroom.
  std::uint64_t max_executions = 50000;
  // Naive-enumeration budget (the unreduced baseline the ratio is measured against).
  // The effective budget is max(this, 2 * dpor_executions + 1), so a capped baseline
  // still certifies a >= 2x reduction (reported as a lower bound, never inflated).
  std::uint64_t naive_max_executions = 1500;
  // Per-execution scheduler step budget. A correct cell hitting this during
  // exploration is reported as kBoundExceeded, never as a bug.
  std::uint64_t max_steps = 4000;
  // Run the naive baseline after a proof (skipped for counterexample verdicts,
  // where the ratio is not meaningful).
  bool run_naive_baseline = true;
};

// Observables of one guided execution.
struct DporRun {
  std::vector<GuidedSchedule::Decision> decisions;
  std::vector<FlightEvent> events;
  bool completed = false;
  bool deadlocked = false;
  bool step_limit = false;
  bool diverged = false;  // The prefix named a non-runnable thread (replay bug).
  std::uint64_t steps = 0;
  std::uint64_t evicted = 0;  // Flight-ring evictions (must be 0 for sound footprints).
  std::string report;         // DetRuntime stuck report when !completed.
  std::string oracle;         // Oracle diagnostic on completed runs ("" = clean).
  int anomalies = 0;          // AnomalyDetector findings (DiagnoseStuck on deadlock).
  std::string anomaly_report;
  std::string postmortem_cause;  // Flight-recorder postmortem of a failed run.
  std::string postmortem;
  HbAnalysis hb;
};

// Replays one decision prefix through a fresh DetRuntime and returns what happened.
// Implementations must be deterministic functions of the prefix and safe to call
// concurrently (each call owns its runtime, recorder, and solution).
using DporRunner = std::function<DporRun(const std::vector<std::uint32_t>& prefix,
                                         const DporOptions& options)>;

enum class DporVerdict {
  kProvedDeadlockFree,  // Reduced tree fully explored; every execution clean.
  kCounterexample,      // A replayable failing prefix was found.
  kBoundExceeded,       // Budget exhausted before either of the above.
};

// Stable strings used in JSON and goldens: "proved_deadlock_free",
// "counterexample", "bound_exceeded".
const char* DporVerdictName(DporVerdict verdict);

struct DporCounterexample {
  // Thread ids of every scheduling decision of the failing run; feeding this back
  // through the cell's runner reproduces the failure exactly.
  std::vector<std::uint32_t> prefix;
  std::string reason;  // "deadlock" | "uncertified-wakeup" | "client-race" | "oracle".
  std::string detail;
};

// One explorable cell: a mechanism's solution under a tiny bounded workload.
struct DporCell {
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string problem;
  std::string display;
  bool seeded_bug = false;  // True for the deliberately broken demonstration cells.
  DporRunner run;
};

struct DporCellResult {
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string problem;
  std::string display;
  bool seeded_bug = false;
  DporVerdict verdict = DporVerdict::kBoundExceeded;

  std::uint64_t executions = 0;   // Guided runs the DPOR explorer performed.
  std::uint64_t redundant = 0;    // Runs whose fallback tail re-entered a sleep set.
  std::uint64_t transitions = 0;  // Total slices across all DPOR runs.
  std::uint64_t max_depth = 0;    // Longest decision sequence seen.

  std::uint64_t naive_executions = 0;
  bool naive_complete = false;    // Naive enumeration finished within its budget.
  double reduction_ratio = 0.0;   // naive/dpor; a lower bound when !naive_complete.

  std::uint64_t certified_wakeups = 0;  // HB-matched notified wakes, all runs.
  std::uint64_t hb_joins = 0;           // HB edges applied, all runs.

  std::string note;  // Degradations (telemetry off, eviction, divergence).
  bool has_counterexample = false;
  DporCounterexample counterexample;
};

// The footnote-2 exploration cells at DPOR-sized bounds: the paper's canonical
// problems under two mechanisms each, plus instrumented shared-counter cells, plus
// the seeded-bug demonstration cells (naive dining philosophers, a stolen-signal
// single-condvar buffer, and an unguarded counter).
std::vector<DporCell> BuildDporSuite();

// Explores one cell to a verdict.
DporCellResult ExploreCell(const DporCell& cell, const DporOptions& options = {});

struct DporSuiteResult {
  std::vector<DporCellResult> cells;  // Same order as the input suite.
  int jobs = 1;
  double wall_seconds = 0.0;
  std::vector<WorkerTelemetry> workers;
};

// Explores every cell, one cell per pool task (runtime/parallel_sweep.h). Results
// are positionally assigned, so the output is identical for any worker count.
DporSuiteResult ExploreDporSuite(const std::vector<DporCell>& suite,
                                 const DporOptions& options = {},
                                 const ParallelOptions& parallel = {});

// What replaying a counterexample prefix reproduced; used by the CLI and tests to
// confirm DPOR findings against the independent anomaly detector.
struct DporReplay {
  bool completed = false;
  bool deadlocked = false;
  bool diverged = false;
  std::uint64_t steps = 0;
  int anomalies = 0;  // Detector findings during the replay (>=1 confirms a deadlock).
  std::string anomaly_report;
  std::string postmortem_cause;
  std::string postmortem;
  std::string oracle;
  HbAnalysis hb;
};

DporReplay ReplayDporCounterexample(const DporCell& cell,
                                    const std::vector<std::uint32_t>& prefix,
                                    const DporOptions& options = {});

}  // namespace syneval

#endif  // SYNEVAL_ANALYSIS_DPOR_H_
