#include "syneval/analysis/catalog.h"

#include <map>
#include <sstream>
#include <utility>

#include "syneval/solutions/dining_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/registry.h"

namespace syneval {

namespace {

ClientStep B(const char* op) { return {ClientStep::Kind::kBegin, op}; }
ClientStep E(const char* op) { return {ClientStep::Kind::kEnd, op}; }

ClientScript Script(const char* name, std::vector<ClientStep> steps,
                    int max_instances = 2) {
  ClientScript script;
  script.name = name;
  script.steps = std::move(steps);
  script.max_instances = max_instances;
  return script;
}

}  // namespace

std::vector<PathModelEntry> RegistryPathModels() {
  std::vector<PathModelEntry> entries;
  auto add = [&](std::string problem, PathModel model) {
    entries.push_back({Mechanism::kPathExpression, std::move(problem), std::move(model)});
  };

  // Buffers, FCFS and disk have no synchronization procedures: the default
  // one-call-per-operation scripts model their clients exactly.
  add("bounded-buffer",
      {"CH74 bounded buffer path", PathBoundedBuffer::Program(3), {}});
  add("one-slot-buffer", {"CH74 one-slot buffer path", PathOneSlotBuffer::Program(), {}});

  // Figures 1 and 2: the scripts transcribe the synchronization procedures from the
  // paper (and pathexpr_solutions.cc) — the nesting is where hold-and-wait can hide.
  add("rw-readers-priority",
      {"Figure 1 (CH74 readers priority)",
       PathExprRwFigure1::Program(),
       {Script("READ", {B("requestread"), B("read"), E("read"), E("requestread")}),
        Script("WRITE", {B("writeattempt"), B("requestwrite"), B("openwrite"),
                         E("openwrite"), E("requestwrite"), E("writeattempt"),
                         B("write"), E("write")})}});
  add("rw-writers-priority",
      {"Figure 2 (CH74 writers priority)",
       PathExprRwFigure2::Program(),
       {Script("READ", {B("readattempt"), B("requestread"), B("openread"),
                        E("openread"), E("requestread"), E("readattempt"), B("read"),
                        E("read")}),
        Script("WRITE", {B("requestwrite"), B("write"), E("write"), E("requestwrite")})}});

  add("rw-readers-priority",
      {"Predicate paths (Andler) readers priority", PathExprRwPredicates::Program(), {}});
  add("fcfs-resource", {"FCFS resource path", PathFcfsResource::Program(), {}});
  add("disk-fcfs",
      {"Disk path (FCFS only; SCAN inexpressible)", PathDiskFcfs::Program(), {}});

  // Four seats so non-adjacent philosophers exist: eat0/eat2 can overlap-alternate,
  // keeping both forks of eat1 never simultaneously free — the starvation the checker
  // must find. A philosopher is one thread, hence max_instances = 1 per script.
  PathModel dining{"One path per fork (atomic prologues)", PathDining::Program(4), {}};
  for (int seat = 0; seat < 4; ++seat) {
    dining.scripts.push_back(SimpleCall("eat" + std::to_string(seat), 1));
  }
  add("dining-philosophers", std::move(dining));

  return entries;
}

std::vector<MonitorModelEntry> RegistryMonitorModels() {
  std::vector<MonitorModelEntry> entries;
  auto monitor = [&](std::string problem, MonitorModel model) {
    model.semantics = WaitSemantics::kHoare;  // monitor.h implements Hoare transfer.
    entries.push_back({Mechanism::kMonitor, std::move(problem), std::move(model)});
  };
  auto ccr = [&](std::string problem, MonitorModel model) {
    model.semantics = WaitSemantics::kCcr;
    entries.push_back({Mechanism::kConditionalRegion, std::move(problem), std::move(model)});
  };

  // --- Hoare monitors (one site per Wait/Signal in monitor_solutions.cc) ------------
  monitor("bounded-buffer",
          {"Hoare bounded buffer monitor",
           WaitSemantics::kHoare,
           {{"nonfull", "count < capacity", true, 8}, {"nonempty", "count > 0", true, 8}},
           {{"nonempty", false, 1, false}, {"nonfull", false, 1, false}}});
  monitor("one-slot-buffer",
          {"One-slot buffer monitor",
           WaitSemantics::kHoare,
           {{"empty", "!has_item", true, 8}, {"full", "has_item", true, 8}},
           {{"full", false, 1, false}, {"empty", false, 1, false}}});
  monitor("rw-readers-priority",
          {"Readers-priority monitor (CHP semantics)",
           WaitSemantics::kHoare,
           {{"ok_to_read", "!writing", true, 8},
            {"ok_to_write", "!writing && readers == 0", true, 8}},
           // Entering readers cascade ok_to_read so the whole batch is admitted.
           {{"ok_to_read", false, 8, true},
            {"ok_to_write", false, 1, false},
            {"ok_to_read", false, 8, true}}});
  monitor("rw-writers-priority",
          {"Writers-priority monitor",
           WaitSemantics::kHoare,
           {{"ok_to_read", "!writing && no waiting writer", true, 8},
            {"ok_to_write", "!writing && readers == 0", true, 8}},
           {{"ok_to_read", false, 8, true},
            {"ok_to_write", false, 1, false},
            {"ok_to_write", false, 1, false}}});
  monitor("rw-fcfs",
          {"FCFS monitor (two-stage queuing)",
           WaitSemantics::kHoare,
           {{"turn", "my ticket is at the head and admissible", true, 8}},
           // A reader at the head re-signals turn: consecutive readers chain in.
           {{"turn", false, 8, true}, {"turn", false, 1, false}}});
  monitor("rw-fair",
          {"Fair (batch alternation) monitor, Hoare 1974",
           WaitSemantics::kHoare,
           // Hoare's 1974 text: `if` waits relying on signal handoff, not re-test.
           {{"ok_to_read", "!writing && no waiting writer", false, 8},
            {"ok_to_write", "!writing && readers == 0", false, 8}},
           {{"ok_to_read", false, 8, true},
            {"ok_to_write", false, 1, false},
            {"ok_to_read", false, 8, true}}});
  monitor("fcfs-resource",
          {"FCFS resource monitor",
           WaitSemantics::kHoare,
           {{"turn", "!busy", true, 8}},
           {{"turn", false, 1, false}}});
  monitor("disk-scan",
          {"Hoare disk-head scheduler (SCAN)",
           WaitSemantics::kHoare,
           {{"upsweep", "!busy (sweep passes my track going up)", false, 8},
            {"downsweep", "!busy (sweep passes my track going down)", false, 8}},
           {{"upsweep", false, 1, false}, {"downsweep", false, 1, false}}});
  monitor("alarm-clock",
          {"Hoare alarm clock",
           WaitSemantics::kHoare,
           {{"wakeup", "now >= alarm", true, 8}},
           // Tick signals in a loop while due sleepers remain: a wakeup chain.
           {{"wakeup", false, 8, true}}});
  monitor("sjn-allocator",
          {"Shortest-job-next monitor (Hoare scheduled wait)",
           WaitSemantics::kHoare,
           {{"queue", "!busy", false, 8}},
           {{"queue", false, 1, false}}});
  monitor("dining-philosophers",
          {"Dijkstra state monitor (test + private conditions)",
           WaitSemantics::kHoare,
           // One private condition per seat; self[p] is signalled only after test()
           // already set state[p] = eating, so the predicate holds on wake.
           {{"self[p]", "state[p] == eating", false, 1}},
           {{"self[p]", false, 1, false}}});
  monitor("cigarette-smokers",
          {"Monitor smokers (condition per smoker)",
           WaitSemantics::kHoare,
           {{"table_free", "!present && !smoking", true, 8},
            {"my_pair[i]", "present && table == i", true, 1}},
           {{"my_pair[i]", false, 1, false}, {"table_free", false, 1, false}}});

  // --- Conditional critical regions (wait = `region when <predicate>`) --------------
  // Signals are implicit: every region exit re-tests every queued predicate, so the
  // lint's never-signalled rule exempts kCcr models.
  ccr("bounded-buffer",
      {"region when count < N / count > 0",
       WaitSemantics::kCcr,
       {{"deposit", "count < capacity", true, 8}, {"remove", "count > 0", true, 8}},
       {}});
  ccr("one-slot-buffer",
      {"region when has_item flips",
       WaitSemantics::kCcr,
       {{"deposit", "!has_item", true, 8}, {"remove", "has_item", true, 8}},
       {}});
  ccr("rw-readers-priority",
      {"CCR readers priority (pending-reader counter)",
       WaitSemantics::kCcr,
       {{"read", "!writing", true, 8},
        {"write", "!writing && readers == 0 && pending_readers == 0", true, 8}},
       {}});
  ccr("rw-writers-priority",
      {"CCR writers priority (pending-writer counter)",
       WaitSemantics::kCcr,
       {{"read", "!writing && pending_writers == 0", true, 8},
        {"write", "!writing && readers == 0", true, 8}},
       {}});
  ccr("fcfs-resource",
      {"CCR FCFS (ticket in condition)",
       WaitSemantics::kCcr,
       {{"acquire", "!busy && ticket == serving", true, 8}},
       {}});
  ccr("disk-scan",
      {"CCR SCAN (pending list re-derived per exit)",
       WaitSemantics::kCcr,
       {{"access", "!busy && my track is the SCAN choice over pending", true, 8}},
       {}});
  ccr("alarm-clock",
      {"region when now >= due", WaitSemantics::kCcr, {{"wake", "now >= due", true, 8}}, {}});
  ccr("sjn-allocator",
      {"CCR SJN (pending estimates, min in condition)",
       WaitSemantics::kCcr,
       {{"use", "!busy && my estimate is the pending minimum", true, 8}},
       {}});
  ccr("dining-philosophers",
      {"region when neighbours not eating",
       WaitSemantics::kCcr,
       {{"eat", "!eating[left] && !eating[right]", true, 1}},
       {}});
  ccr("cigarette-smokers",
      {"region when table = holding",
       WaitSemantics::kCcr,
       {{"agent", "!present && !smoking", true, 8},
        {"smoker", "present && table == holding", true, 1}},
       {}});

  return entries;
}

PathModel BrokenCrossedGatesModel() {
  PathModel model;
  model.name = "crossed gates (deliberately broken)";
  model.program = "path 1:(geta) end path 1:(getb) end";
  model.scripts = {Script("ab", {B("geta"), B("getb"), E("getb"), E("geta")}),
                   Script("ba", {B("getb"), B("geta"), E("geta"), E("getb")})};
  return model;
}

std::string SolutionVerdict::VerdictString() const {
  std::ostringstream os;
  if (is_path) {
    os << SafetyVerdictName(model.safety);
    if (model.guard_dependent) {
      os << " (modulo guards)";
    }
    if (!model.unreachable_ops.empty()) {
      os << ", unreachable: {";
      for (std::size_t i = 0; i < model.unreachable_ops.size(); ++i) {
        os << (i == 0 ? "" : ", ") << model.unreachable_ops[i];
      }
      os << "}";
    }
    if (!model.starvable_ops.empty()) {
      os << ", starvable: {";
      for (std::size_t i = 0; i < model.starvable_ops.size(); ++i) {
        os << (i == 0 ? "" : ", ") << model.starvable_ops[i];
      }
      os << "}";
    }
    return os.str();
  }
  if (findings.empty()) {
    return std::string("lint-clean (") + WaitSemanticsName(semantics) + ")";
  }
  std::map<std::string, std::pair<LintSeverity, int>> by_rule;
  for (const LintFinding& finding : findings) {
    auto& slot = by_rule[finding.rule];
    slot.first = finding.severity;
    ++slot.second;
  }
  bool first = true;
  for (const auto& [rule, slot] : by_rule) {
    os << (first ? "" : ", ") << rule << " x" << slot.second << " ("
       << LintSeverityName(slot.first) << ")";
    first = false;
  }
  return os.str();
}

std::vector<SolutionVerdict> AnalyzeRegistry() {
  std::map<std::pair<int, std::string>, const PathModelEntry*> paths;
  const std::vector<PathModelEntry> path_entries = RegistryPathModels();
  for (const PathModelEntry& entry : path_entries) {
    paths[{static_cast<int>(entry.mechanism), entry.model.name}] = &entry;
  }
  std::map<std::pair<int, std::string>, const MonitorModelEntry*> monitors;
  const std::vector<MonitorModelEntry> monitor_entries = RegistryMonitorModels();
  for (const MonitorModelEntry& entry : monitor_entries) {
    monitors[{static_cast<int>(entry.mechanism), entry.model.name}] = &entry;
  }

  std::vector<SolutionVerdict> verdicts;
  for (const SolutionInfo& info : AllSolutionInfos()) {
    const std::pair<int, std::string> key{static_cast<int>(info.mechanism),
                                          info.display_name};
    SolutionVerdict verdict;
    verdict.mechanism = info.mechanism;
    verdict.problem = info.problem;
    verdict.display_name = info.display_name;
    if (const auto it = paths.find(key); it != paths.end()) {
      verdict.is_path = true;
      verdict.model = CheckPathModel(it->second->model);
      verdict.statically_safe = verdict.model.safety == SafetyVerdict::kDeadlockFree &&
                                verdict.model.unreachable_ops.empty() &&
                                verdict.model.starvable_ops.empty();
    } else if (const auto mit = monitors.find(key); mit != monitors.end()) {
      verdict.is_path = false;
      verdict.semantics = mit->second->model.semantics;
      verdict.findings = LintMonitorModel(mit->second->model);
      verdict.statically_safe = true;
      for (const LintFinding& finding : verdict.findings) {
        verdict.statically_safe =
            verdict.statically_safe && finding.severity != LintSeverity::kError;
      }
    } else {
      continue;  // Mechanism without a static model yet (semaphore/serializer/CSP).
    }
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

}  // namespace syneval
