#include "syneval/fault/chaos.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/fault/injector.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/virtual_disk.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/trace/recorder.h"

namespace syneval {

namespace {

// Chaos trials run with a reduced step budget: the fault layer's stall plans burn
// scheduler steps on purpose (a stall longer than the budget turns "thread doing
// nothing in a critical section" into a diagnosable hang), so the budget must be far
// above any clean run (scale-1 workloads finish in well under 4k steps) yet small
// enough that a stalled run ends quickly. diagnose_on_step_limit makes the step-limit
// path classify the stalled run's blocked peers.
constexpr std::uint64_t kChaosMaxSteps = 20'000;

DetRuntime::Options ChaosOptions() {
  DetRuntime::Options options;
  options.max_steps = kChaosMaxSteps;
  options.diagnose_on_step_limit = true;
  return options;
}

// Derives the per-trial injector seed: probability triggers then pick different
// injection points on different schedules, while (plan, schedule seed) still fully
// determines the run.
FaultPlan SeededPlan(const FaultPlan& plan, std::uint64_t schedule_seed) {
  FaultPlan seeded = plan;
  seeded.seed = plan.seed ^ (schedule_seed * 0x9E3779B97F4A7C15ULL);
  return seeded;
}

ChaosReplayResult FinishTrial(const DetRuntime::RunResult& result,
                              const AnomalyDetector& detector,
                              const std::optional<FaultInjector>& injector,
                              const std::string& oracle_verdict,
                              const FlightRecorder& flight, const TraceRecorder& trace) {
  ChaosReplayResult replay;
  ChaosTrialOutcome& out = replay.outcome;
  out.completed = result.completed;
  out.hung = result.deadlocked || result.step_limit;
  out.steps = result.steps;
  out.anomalies = detector.counts().total();
  out.flight_evicted = flight.evicted();
  if (injector.has_value()) {
    out.injected = injector->injected_count();
    out.first_injection_step = injector->first_injection_nanos() / 1000;
  }
  if (result.completed) {
    out.oracle_failed = !oracle_verdict.empty();
    out.report = oracle_verdict;
  } else {
    out.report = result.report;
  }
  if (out.hung || out.oracle_failed || out.anomalies > 0) {
    replay.postmortem = BuildPostmortem(flight, &detector);
    out.postmortem_cause = replay.postmortem.cause;
    out.postmortem = replay.postmortem.ToText();
  }
  replay.events = trace.Events();
  return replay;
}

// Builds a ChaosCase from its rich replay function; the sweep-facing trial is the same
// run with the event capture discarded.
ChaosCase MakeCase(Mechanism mechanism, std::string problem, std::string display,
                   ChaosReplayFn replay) {
  ChaosCase chaos_case;
  chaos_case.mechanism = mechanism;
  chaos_case.problem = std::move(problem);
  chaos_case.display = std::move(display);
  chaos_case.trial = [replay](std::uint64_t seed, const FaultPlan* plan) {
    return replay(seed, plan).outcome;
  };
  chaos_case.replay = std::move(replay);
  return chaos_case;
}

// Generic chaos trial: fresh runtime + detector + flight recorder (+ injector when a
// plan is given), solution, workload, run, oracle. Mirrors conformance's MakeTrial
// with the fault seam added.
template <typename SolutionT>
ChaosReplayFn MakeChaosTrial(
    std::function<std::unique_ptr<SolutionT>(Runtime&)> make,
    std::function<ThreadList(Runtime&, SolutionT&, TraceRecorder&)> spawn,
    std::function<std::string(const std::vector<Event>&)> check) {
  return [make = std::move(make), spawn = std::move(spawn), check = std::move(check)](
             std::uint64_t seed, const FaultPlan* plan) -> ChaosReplayResult {
    DetRuntime runtime(MakeRandomSchedule(seed), ChaosOptions());
    AnomalyDetector detector;
    TraceRecorder trace;
    FlightRecorder flight{FlightRecorder::Options::ForTrial()};
    detector.AttachTrace(&trace);
    trace.SetObserver(&detector);
    trace.SetSecondaryObserver(&flight);
    runtime.AttachAnomalyDetector(&detector);
    runtime.AttachFlightRecorder(&flight);
    std::optional<FaultInjector> injector;
    if (plan != nullptr) {
      injector.emplace(SeededPlan(*plan, seed));
      runtime.AttachFaultInjector(&*injector);
    }
    std::unique_ptr<SolutionT> solution = make(runtime);
    ThreadList threads = spawn(runtime, *solution, trace);
    const DetRuntime::RunResult result = runtime.Run();
    return FinishTrial(result, detector, injector,
                       result.completed ? check(trace.Events()) : std::string(), flight,
                       trace);
  };
}

struct ChaosSuiteBuilder {
  int scale = 1;
  std::vector<ChaosCase> cases;

  void AddBoundedBuffer(Mechanism mechanism, const std::string& display,
                        std::function<std::unique_ptr<BoundedBufferIface>(Runtime&)> make,
                        int capacity) {
    BufferWorkloadParams params;
    params.items_per_producer = 4 * scale;
    cases.push_back(MakeCase(
        mechanism, "bounded-buffer", display,
        MakeChaosTrial<BoundedBufferIface>(
            std::move(make),
            [params](Runtime& rt, BoundedBufferIface& buffer, TraceRecorder& trace) {
              return SpawnBoundedBufferWorkload(rt, buffer, trace, params);
            },
            [capacity](const std::vector<Event>& events) {
              return CheckBoundedBuffer(events, capacity);
            })));
  }

  void AddOneSlot(Mechanism mechanism, const std::string& display,
                  std::function<std::unique_ptr<OneSlotBufferIface>(Runtime&)> make) {
    BufferWorkloadParams params;
    params.items_per_producer = 4 * scale;
    cases.push_back(MakeCase(
        mechanism, "one-slot-buffer", display,
        MakeChaosTrial<OneSlotBufferIface>(
            std::move(make),
            [params](Runtime& rt, OneSlotBufferIface& buffer, TraceRecorder& trace) {
              return SpawnOneSlotBufferWorkload(rt, buffer, trace, params);
            },
            [](const std::vector<Event>& events) { return CheckOneSlotBuffer(events); })));
  }

  void AddRw(Mechanism mechanism, const std::string& display,
             std::function<std::unique_ptr<ReadersWritersIface>(Runtime&)> make) {
    RwWorkloadParams params;
    params.ops_per_reader = 3 * scale;
    params.ops_per_writer = 2 * scale;
    cases.push_back(MakeCase(
        mechanism, "rw-readers-priority", display,
        MakeChaosTrial<ReadersWritersIface>(
            std::move(make),
            [params](Runtime& rt, ReadersWritersIface& rw, TraceRecorder& trace) {
              return SpawnReadersWritersWorkload(rt, rw, trace, params);
            },
            [](const std::vector<Event>& events) {
              return CheckReadersWriters(events, RwPolicy::kReadersPriority, 8,
                                         RwStrictness::kStrict);
            })));
  }

  void AddFcfs(Mechanism mechanism, const std::string& display,
               std::function<std::unique_ptr<FcfsResourceIface>(Runtime&)> make) {
    FcfsWorkloadParams params;
    params.ops_per_thread = 3 * scale;
    cases.push_back(MakeCase(
        mechanism, "fcfs-resource", display,
        MakeChaosTrial<FcfsResourceIface>(
            std::move(make),
            [params](Runtime& rt, FcfsResourceIface& resource, TraceRecorder& trace) {
              return SpawnFcfsWorkload(rt, resource, trace, params);
            },
            [](const std::vector<Event>& events) { return CheckFcfsResource(events); })));
  }

  void AddDiskScan(Mechanism mechanism, const std::string& display,
                   std::function<std::unique_ptr<DiskSchedulerIface>(Runtime&)> make) {
    DiskWorkloadParams params;
    params.requests_per_thread = 3 * scale;
    params.tracks = 100;
    ChaosReplayFn replay = [make = std::move(make), params](
                               std::uint64_t seed,
                               const FaultPlan* plan) -> ChaosReplayResult {
      DetRuntime runtime(MakeRandomSchedule(seed), ChaosOptions());
      AnomalyDetector detector;
      TraceRecorder trace;
      FlightRecorder flight{FlightRecorder::Options::ForTrial()};
      detector.AttachTrace(&trace);
      trace.SetObserver(&detector);
      trace.SetSecondaryObserver(&flight);
      runtime.AttachAnomalyDetector(&detector);
      runtime.AttachFlightRecorder(&flight);
      std::optional<FaultInjector> injector;
      if (plan != nullptr) {
        injector.emplace(SeededPlan(*plan, seed));
        runtime.AttachFaultInjector(&*injector);
      }
      VirtualDisk disk(params.tracks, 0);
      std::unique_ptr<DiskSchedulerIface> scheduler = make(runtime);
      DiskWorkloadParams seeded = params;
      seeded.seed = seed;
      ThreadList threads = SpawnDiskWorkload(runtime, *scheduler, disk, trace, seeded);
      const DetRuntime::RunResult result = runtime.Run();
      std::string verdict;
      if (result.completed) {
        verdict = disk.violations() != 0 ? "virtual disk observed concurrent access"
                                         : CheckScanDiskSchedule(trace.Events(), 0);
      }
      return FinishTrial(result, detector, injector, verdict, flight, trace);
    };
    cases.push_back(MakeCase(mechanism, "disk-scan", display, std::move(replay)));
  }

  void AddAlarm(Mechanism mechanism, const std::string& display,
                std::function<std::unique_ptr<AlarmClockIface>(Runtime&)> make) {
    AlarmWorkloadParams params;
    params.naps_per_sleeper = 2 * scale;
    cases.push_back(MakeCase(
        mechanism, "alarm-clock", display,
        MakeChaosTrial<AlarmClockIface>(
            std::move(make),
            [params](Runtime& rt, AlarmClockIface& clock, TraceRecorder& trace) {
              return SpawnAlarmClockWorkload(rt, clock, trace, params);
            },
            [](const std::vector<Event>& events) { return CheckAlarmClock(events, 0); })));
  }
};

}  // namespace

std::vector<ChaosCase> BuildChaosSuite(int workload_scale) {
  ChaosSuiteBuilder b;
  b.scale = workload_scale;

  b.AddBoundedBuffer(Mechanism::kSemaphore, "Dijkstra bounded buffer",
                     [](Runtime& rt) { return std::make_unique<SemaphoreBoundedBuffer>(rt, 3); },
                     3);
  b.AddBoundedBuffer(Mechanism::kMonitor, "Hoare bounded buffer",
                     [](Runtime& rt) { return std::make_unique<MonitorBoundedBuffer>(rt, 3); },
                     3);

  b.AddOneSlot(Mechanism::kSemaphore, "One-slot buffer (semaphores)",
               [](Runtime& rt) { return std::make_unique<SemaphoreOneSlotBuffer>(rt); });
  b.AddOneSlot(Mechanism::kConditionalRegion, "region when has_item flips",
               [](Runtime& rt) { return std::make_unique<CcrOneSlotBuffer>(rt); });

  // Readers priority: the semaphore variants violate priority by design under weak
  // semaphores (expect_violations in the conformance suite), so the clean monitor and
  // serializer solutions carry the calibration here.
  b.AddRw(Mechanism::kMonitor, "Readers-priority monitor",
          [](Runtime& rt) { return std::make_unique<MonitorRwReadersPriority>(rt); });
  b.AddRw(Mechanism::kSerializer, "Readers-priority serializer",
          [](Runtime& rt) { return std::make_unique<SerializerRwReadersPriority>(rt); });

  b.AddFcfs(Mechanism::kSemaphore, "Strong semaphore",
            [](Runtime& rt) { return std::make_unique<SemaphoreFcfsResource>(rt); });
  b.AddFcfs(Mechanism::kSerializer, "FCFS serializer",
            [](Runtime& rt) { return std::make_unique<SerializerFcfsResource>(rt); });

  b.AddDiskScan(Mechanism::kMonitor, "Hoare dischead",
                [](Runtime& rt) { return std::make_unique<MonitorDiskScheduler>(rt, 0); });
  b.AddDiskScan(Mechanism::kSerializer, "SCAN serializer",
                [](Runtime& rt) { return std::make_unique<SerializerDiskScheduler>(rt, 0); });

  b.AddAlarm(Mechanism::kSemaphore, "Private-semaphore alarm clock",
             [](Runtime& rt) { return std::make_unique<SemaphoreAlarmClock>(rt); });
  b.AddAlarm(Mechanism::kMonitor, "Hoare alarm clock",
             [](Runtime& rt) { return std::make_unique<MonitorAlarmClock>(rt); });

  return b.cases;
}

std::vector<ChaosFaultFamily> CalibrationFaultFamilies() {
  return {
      // Up to two seeded-probability signal drops per run. Matching either notify
      // flavour is essential: only semaphore V and Mesa Signal use NotifyOne — every
      // other mechanism family here broadcasts.
      {"lost-signal", "drop-signal:prob=0.25,fires=2"},
      // A stall longer than the chaos step budget: the first critical section entered
      // never ends, so every peer needing that lock starves until the step limit
      // diagnoses them.
      {"stall", "stall:nth=1,steps=30000"},
  };
}

double ChaosCalibrationTable::MinRecall() const {
  double min_recall = 1.0;
  for (const ChaosCalibrationRow& row : rows) {
    const double recall = row.outcome.Recall();
    if (recall >= 0.0 && recall < min_recall) {
      min_recall = recall;
    }
  }
  return min_recall;
}

int ChaosCalibrationTable::TotalFalsePositives() const {
  int total = 0;
  for (const ChaosCalibrationRow& row : rows) {
    total += row.outcome.clean_anomalies;
  }
  return total;
}

ChaosCalibrationTable RunChaosCalibration(int seeds_per_case, std::uint64_t base_seed,
                                          int workload_scale,
                                          const ParallelOptions& parallel) {
  const auto grid_start = std::chrono::steady_clock::now();
  ChaosCalibrationTable table;
  table.seeds_per_case = seeds_per_case;
  table.base_seed = base_seed;
  const std::vector<ChaosFaultFamily> families = CalibrationFaultFamilies();
  for (const ChaosCase& chaos_case : BuildChaosSuite(workload_scale)) {
    for (const ChaosFaultFamily& family : families) {
      const FaultPlan plan = MustParseFaultPlan(family.plan_text, /*seed=*/base_seed);
      ChaosCalibrationRow row;
      row.problem = chaos_case.problem;
      row.mechanism = chaos_case.mechanism;
      row.display = chaos_case.display;
      row.fault = family.name;
      row.plan = family.plan_text;
      // Per-row key namespace under checkpointing (see RunConformanceSuite): the
      // chunk keys alone cannot distinguish rows, and the scope pins the scale.
      ParallelOptions scoped = parallel;
      if (scoped.checkpoint != nullptr) {
        scoped.checkpoint_scope += "/chaos/" + chaos_case.problem + "/" +
                                   chaos_case.display + "/" + family.name + "/scale" +
                                   std::to_string(workload_scale);
      }
      ParallelChaosResult sweep =
          ParallelSweepChaos(seeds_per_case, chaos_case.trial, plan, base_seed, scoped);
      row.outcome = std::move(sweep.outcome);
      table.jobs = sweep.jobs;
      MergeWorkerTelemetry(table.workers, sweep.workers);
      table.rows.push_back(std::move(row));
    }
  }
  table.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - grid_start).count();
  return table;
}

std::optional<ChaosReplayResult> ReplayChaosTrial(const std::string& problem,
                                                  Mechanism mechanism,
                                                  const std::string& fault_family,
                                                  std::uint64_t seed,
                                                  std::uint64_t base_seed,
                                                  int workload_scale) {
  const ChaosFaultFamily* family = nullptr;
  const std::vector<ChaosFaultFamily> families = CalibrationFaultFamilies();
  for (const ChaosFaultFamily& candidate : families) {
    if (candidate.name == fault_family) {
      family = &candidate;
    }
  }
  if (!fault_family.empty() && family == nullptr) {
    return std::nullopt;
  }
  for (const ChaosCase& chaos_case : BuildChaosSuite(workload_scale)) {
    if (chaos_case.problem != problem || chaos_case.mechanism != mechanism) {
      continue;
    }
    if (family == nullptr) {
      return chaos_case.replay(seed, nullptr);
    }
    const FaultPlan plan = MustParseFaultPlan(family->plan_text, /*seed=*/base_seed);
    return chaos_case.replay(seed, &plan);
  }
  return std::nullopt;
}

}  // namespace syneval
