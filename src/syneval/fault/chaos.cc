#include "syneval/fault/chaos.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/fault/injector.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/virtual_disk.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/trace/recorder.h"

namespace syneval {

namespace {

// Chaos trials run with a reduced step budget: the fault layer's stall plans burn
// scheduler steps on purpose (a stall longer than the budget turns "thread doing
// nothing in a critical section" into a diagnosable hang), so the budget must be far
// above any clean run (scale-1 workloads finish in well under 4k steps) yet small
// enough that a stalled run ends quickly. diagnose_on_step_limit makes the step-limit
// path classify the stalled run's blocked peers.
constexpr std::uint64_t kChaosMaxSteps = 20'000;

DetRuntime::Options ChaosOptions() {
  DetRuntime::Options options;
  options.max_steps = kChaosMaxSteps;
  options.diagnose_on_step_limit = true;
  return options;
}

// Chaos trials keep the trial-sized rings but raise the growth cap: stall and
// lost-signal plans run to the 20k-step budget with every event retained, and the
// busiest ring (the semaphore alarm-clock under lost-signal) peaks well past
// ForTrial()'s 8192-event cap. 65536 keeps flight_evicted at zero across the whole
// calibration grid — asserted by the golden file — at a bounded worst-case cost of a
// few MB per trial, paid only by rings that actually grow.
FlightRecorder::Options ChaosFlightOptions() {
  FlightRecorder::Options options = FlightRecorder::Options::ForTrial();
  options.max_events_per_ring = 65536;
  return options;
}

// Derives the per-trial injector seed: probability triggers then pick different
// injection points on different schedules, while (plan, schedule seed) still fully
// determines the run.
FaultPlan SeededPlan(const FaultPlan& plan, std::uint64_t schedule_seed) {
  FaultPlan seeded = plan;
  seeded.seed = plan.seed ^ (schedule_seed * 0x9E3779B97F4A7C15ULL);
  return seeded;
}

ChaosReplayResult FinishTrial(const DetRuntime::RunResult& result,
                              const AnomalyDetector& detector,
                              const std::optional<FaultInjector>& injector,
                              const std::string& oracle_verdict,
                              const FlightRecorder& flight, const TraceRecorder& trace) {
  ChaosReplayResult replay;
  ChaosTrialOutcome& out = replay.outcome;
  out.completed = result.completed;
  // A supervisor-aborted run is a hang for calibration purposes: the reaper only
  // fires past the wall-clock deadline, and routing the reap through the normal
  // result keeps its injector counts and diagnosis in the fold — a reaped genuine
  // hang still counts toward recall instead of vanishing.
  out.hung = result.deadlocked || result.step_limit || result.aborted;
  out.steps = result.steps;
  out.anomalies = detector.counts().total();
  out.flight_evicted = flight.evicted();
  if (injector.has_value()) {
    out.injected = injector->injected_count();
    out.first_injection_step = injector->first_injection_nanos() / 1000;
  }
  if (result.completed) {
    out.oracle_failed = !oracle_verdict.empty();
    out.report = oracle_verdict;
  } else {
    out.report = result.report;
  }
  if (out.hung || out.oracle_failed || out.anomalies > 0) {
    replay.postmortem = BuildPostmortem(flight, &detector);
    out.postmortem_cause = replay.postmortem.cause;
    out.postmortem = replay.postmortem.ToText();
  }
  replay.events = trace.Events();
  return replay;
}

// Builds a ChaosCase from its rich replay function; the sweep-facing trial is the same
// run with the event capture discarded.
ChaosCase MakeCase(Mechanism mechanism, std::string problem, std::string display,
                   ChaosReplayFn replay) {
  ChaosCase chaos_case;
  chaos_case.mechanism = mechanism;
  chaos_case.problem = std::move(problem);
  chaos_case.display = std::move(display);
  chaos_case.trial = [replay](std::uint64_t seed, const FaultPlan* plan) {
    return replay(seed, plan).outcome;
  };
  chaos_case.replay = std::move(replay);
  return chaos_case;
}

// Generic chaos trial: fresh runtime + detector + flight recorder (+ injector when a
// plan is given), solution, workload, run, oracle. Mirrors conformance's MakeTrial
// with the fault seam added.
template <typename SolutionT>
ChaosReplayFn MakeChaosTrial(
    std::function<std::unique_ptr<SolutionT>(Runtime&)> make,
    std::function<ThreadList(Runtime&, SolutionT&, TraceRecorder&)> spawn,
    std::function<std::string(const std::vector<Event>&)> check) {
  return [make = std::move(make), spawn = std::move(spawn), check = std::move(check)](
             std::uint64_t seed, const FaultPlan* plan) -> ChaosReplayResult {
    DetRuntime runtime(MakeRandomSchedule(seed), ChaosOptions());
    AnomalyDetector detector;
    TraceRecorder trace;
    FlightRecorder flight{ChaosFlightOptions()};
    detector.AttachTrace(&trace);
    trace.SetObserver(&detector);
    trace.SetSecondaryObserver(&flight);
    runtime.AttachAnomalyDetector(&detector);
    runtime.AttachFlightRecorder(&flight);
    std::optional<FaultInjector> injector;
    if (plan != nullptr) {
      injector.emplace(SeededPlan(*plan, seed));
      runtime.AttachFaultInjector(&*injector);
    }
    // Supervision seam: registers the runtime's abort with the thread's installed
    // TrialAbortSlot (a no-op on unsupervised runs — see runtime/supervisor.h). The
    // abort path diagnoses and tears down through Run(), so FinishTrial sees a
    // normal aborted result.
    TrialAbortScope abort_scope([&runtime] { runtime.RequestAbort(); },
                                [&flight, &detector] {
                                  const Postmortem pm = BuildPostmortem(flight, &detector);
                                  TrialObservation obs;
                                  obs.cause = pm.cause;
                                  obs.text = pm.empty() ? std::string() : pm.ToText();
                                  return obs;
                                });
    std::unique_ptr<SolutionT> solution = make(runtime);
    ThreadList threads = spawn(runtime, *solution, trace);
    const DetRuntime::RunResult result = runtime.Run();
    return FinishTrial(result, detector, injector,
                       result.completed ? check(trace.Events()) : std::string(), flight,
                       trace);
  };
}

struct ChaosSuiteBuilder {
  int scale = 1;
  std::vector<ChaosCase> cases;

  void AddBoundedBuffer(Mechanism mechanism, const std::string& display,
                        std::function<std::unique_ptr<BoundedBufferIface>(Runtime&)> make,
                        int capacity) {
    BufferWorkloadParams params;
    params.items_per_producer = 4 * scale;
    cases.push_back(MakeCase(
        mechanism, "bounded-buffer", display,
        MakeChaosTrial<BoundedBufferIface>(
            std::move(make),
            [params](Runtime& rt, BoundedBufferIface& buffer, TraceRecorder& trace) {
              return SpawnBoundedBufferWorkload(rt, buffer, trace, params);
            },
            [capacity](const std::vector<Event>& events) {
              return CheckBoundedBuffer(events, capacity);
            })));
  }

  void AddOneSlot(Mechanism mechanism, const std::string& display,
                  std::function<std::unique_ptr<OneSlotBufferIface>(Runtime&)> make) {
    BufferWorkloadParams params;
    params.items_per_producer = 4 * scale;
    cases.push_back(MakeCase(
        mechanism, "one-slot-buffer", display,
        MakeChaosTrial<OneSlotBufferIface>(
            std::move(make),
            [params](Runtime& rt, OneSlotBufferIface& buffer, TraceRecorder& trace) {
              return SpawnOneSlotBufferWorkload(rt, buffer, trace, params);
            },
            [](const std::vector<Event>& events) { return CheckOneSlotBuffer(events); })));
  }

  void AddRw(Mechanism mechanism, const std::string& display,
             std::function<std::unique_ptr<ReadersWritersIface>(Runtime&)> make) {
    RwWorkloadParams params;
    params.ops_per_reader = 3 * scale;
    params.ops_per_writer = 2 * scale;
    cases.push_back(MakeCase(
        mechanism, "rw-readers-priority", display,
        MakeChaosTrial<ReadersWritersIface>(
            std::move(make),
            [params](Runtime& rt, ReadersWritersIface& rw, TraceRecorder& trace) {
              return SpawnReadersWritersWorkload(rt, rw, trace, params);
            },
            [](const std::vector<Event>& events) {
              return CheckReadersWriters(events, RwPolicy::kReadersPriority, 8,
                                         RwStrictness::kStrict);
            })));
  }

  void AddFcfs(Mechanism mechanism, const std::string& display,
               std::function<std::unique_ptr<FcfsResourceIface>(Runtime&)> make) {
    FcfsWorkloadParams params;
    params.ops_per_thread = 3 * scale;
    cases.push_back(MakeCase(
        mechanism, "fcfs-resource", display,
        MakeChaosTrial<FcfsResourceIface>(
            std::move(make),
            [params](Runtime& rt, FcfsResourceIface& resource, TraceRecorder& trace) {
              return SpawnFcfsWorkload(rt, resource, trace, params);
            },
            [](const std::vector<Event>& events) { return CheckFcfsResource(events); })));
  }

  void AddDiskScan(Mechanism mechanism, const std::string& display,
                   std::function<std::unique_ptr<DiskSchedulerIface>(Runtime&)> make) {
    DiskWorkloadParams params;
    params.requests_per_thread = 3 * scale;
    params.tracks = 100;
    ChaosReplayFn replay = [make = std::move(make), params](
                               std::uint64_t seed,
                               const FaultPlan* plan) -> ChaosReplayResult {
      DetRuntime runtime(MakeRandomSchedule(seed), ChaosOptions());
      AnomalyDetector detector;
      TraceRecorder trace;
      FlightRecorder flight{ChaosFlightOptions()};
      detector.AttachTrace(&trace);
      trace.SetObserver(&detector);
      trace.SetSecondaryObserver(&flight);
      runtime.AttachAnomalyDetector(&detector);
      runtime.AttachFlightRecorder(&flight);
      std::optional<FaultInjector> injector;
      if (plan != nullptr) {
        injector.emplace(SeededPlan(*plan, seed));
        runtime.AttachFaultInjector(&*injector);
      }
      TrialAbortScope abort_scope([&runtime] { runtime.RequestAbort(); },
                                  [&flight, &detector] {
                                    const Postmortem pm =
                                        BuildPostmortem(flight, &detector);
                                    TrialObservation obs;
                                    obs.cause = pm.cause;
                                    obs.text = pm.empty() ? std::string() : pm.ToText();
                                    return obs;
                                  });
      VirtualDisk disk(params.tracks, 0);
      std::unique_ptr<DiskSchedulerIface> scheduler = make(runtime);
      DiskWorkloadParams seeded = params;
      seeded.seed = seed;
      ThreadList threads = SpawnDiskWorkload(runtime, *scheduler, disk, trace, seeded);
      const DetRuntime::RunResult result = runtime.Run();
      std::string verdict;
      if (result.completed) {
        verdict = disk.violations() != 0 ? "virtual disk observed concurrent access"
                                         : CheckScanDiskSchedule(trace.Events(), 0);
      }
      return FinishTrial(result, detector, injector, verdict, flight, trace);
    };
    cases.push_back(MakeCase(mechanism, "disk-scan", display, std::move(replay)));
  }

  void AddAlarm(Mechanism mechanism, const std::string& display,
                std::function<std::unique_ptr<AlarmClockIface>(Runtime&)> make) {
    AlarmWorkloadParams params;
    params.naps_per_sleeper = 2 * scale;
    cases.push_back(MakeCase(
        mechanism, "alarm-clock", display,
        MakeChaosTrial<AlarmClockIface>(
            std::move(make),
            [params](Runtime& rt, AlarmClockIface& clock, TraceRecorder& trace) {
              return SpawnAlarmClockWorkload(rt, clock, trace, params);
            },
            [](const std::vector<Event>& events) { return CheckAlarmClock(events, 0); })));
  }
};

}  // namespace

// ---- Supervised chaos trials --------------------------------------------------------

namespace chaos_internal {

ChaosTrial MakeSupervisedChaosTrial(ChaosTrial inner, const SupervisorOptions& sup,
                                    std::shared_ptr<SupervisedRowState> state) {
  return [inner = std::move(inner), sup, state = std::move(state)](
             std::uint64_t seed, const FaultPlan* plan) -> ChaosTrialOutcome {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->quarantined) {
        ChaosTrialOutcome skipped;
        skipped.skipped = true;
        return skipped;
      }
    }
    const int max_attempts = sup.max_attempts < 1 ? 1 : sup.max_attempts;
    ChaosTrialOutcome out;
    std::string failure;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          ++state->stats.retried;
        }
        std::this_thread::sleep_for(sup.retry_backoff * (1 << (attempt - 2)));
      }
      out = ChaosTrialOutcome();
      failure.clear();
      bool crashed = false;
      std::string crash_what;
      TrialAbortSlot slot;
      const TrialReapResult reap = RunWithTrialDeadline(slot, sup.trial_deadline, [&] {
        try {
          out = inner(seed, plan);
        } catch (const std::exception& error) {
          crashed = true;
          crash_what = error.what();
        } catch (...) {
          crashed = true;
          crash_what = "unknown exception";
        }
      });
      if (crashed) {
        // Synthesize what the unsupervised sweep's catch block would have folded, so
        // the row's denominators stay in step even on the retry-exhausted path.
        out = ChaosTrialOutcome();
        out.hung = true;
        out.report = "trial aborted: " + crash_what;
        failure = "crashed: " + crash_what;
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->stats.crashed;
      } else if (reap.reaped) {
        // The reaped trial still returned through DetRuntime's abort path, so `out`
        // carries its injector counts, step count, and diagnosis. Supplement the
        // postmortem with the reaper's pre-abort harvest when the trial had none.
        if (out.postmortem.empty() && !reap.observation.text.empty()) {
          out.postmortem_cause = reap.observation.cause;
          out.postmortem = reap.observation.text;
        }
        failure = "reaped: trial exceeded its wall-clock deadline";
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->stats.reaped;
      } else {
        return out;  // Healthy (or legitimately failing) attempt: a result, not a
                     // malfunction — never retried.
      }
    }
    // Catastrophic after every attempt: fold the last attempt's outcome anyway (a
    // reaped genuine hang still counts toward recall) and move the row toward
    // quarantine.
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->catastrophic_seeds;
    if (!out.postmortem.empty()) {
      state->last_postmortem_cause = out.postmortem_cause;
      state->last_postmortem = out.postmortem;
    }
    if (!state->quarantined && state->catastrophic_seeds >= sup.quarantine_after) {
      state->quarantined = true;
      ++state->stats.quarantined;
      state->quarantine_reason = std::to_string(state->catastrophic_seeds) +
                                 " catastrophic seed(s) (last: " + failure + ")";
    }
    return out;
  };
}

}  // namespace chaos_internal

namespace {

// Minimal JSON string escaping for the calibration quarantine file (mirrors the
// supervisor's; the fault layer sits below syneval_core, so it cannot reuse the
// scorecard helpers).
std::string QuarantineJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::vector<ChaosCase> BuildChaosSuite(int workload_scale) {
  ChaosSuiteBuilder b;
  b.scale = workload_scale;

  b.AddBoundedBuffer(Mechanism::kSemaphore, "Dijkstra bounded buffer",
                     [](Runtime& rt) { return std::make_unique<SemaphoreBoundedBuffer>(rt, 3); },
                     3);
  b.AddBoundedBuffer(Mechanism::kMonitor, "Hoare bounded buffer",
                     [](Runtime& rt) { return std::make_unique<MonitorBoundedBuffer>(rt, 3); },
                     3);

  b.AddOneSlot(Mechanism::kSemaphore, "One-slot buffer (semaphores)",
               [](Runtime& rt) { return std::make_unique<SemaphoreOneSlotBuffer>(rt); });
  b.AddOneSlot(Mechanism::kConditionalRegion, "region when has_item flips",
               [](Runtime& rt) { return std::make_unique<CcrOneSlotBuffer>(rt); });

  // Readers priority: the semaphore variants violate priority by design under weak
  // semaphores (expect_violations in the conformance suite), so the clean monitor and
  // serializer solutions carry the calibration here.
  b.AddRw(Mechanism::kMonitor, "Readers-priority monitor",
          [](Runtime& rt) { return std::make_unique<MonitorRwReadersPriority>(rt); });
  b.AddRw(Mechanism::kSerializer, "Readers-priority serializer",
          [](Runtime& rt) { return std::make_unique<SerializerRwReadersPriority>(rt); });

  b.AddFcfs(Mechanism::kSemaphore, "Strong semaphore",
            [](Runtime& rt) { return std::make_unique<SemaphoreFcfsResource>(rt); });
  b.AddFcfs(Mechanism::kSerializer, "FCFS serializer",
            [](Runtime& rt) { return std::make_unique<SerializerFcfsResource>(rt); });

  b.AddDiskScan(Mechanism::kMonitor, "Hoare dischead",
                [](Runtime& rt) { return std::make_unique<MonitorDiskScheduler>(rt, 0); });
  b.AddDiskScan(Mechanism::kSerializer, "SCAN serializer",
                [](Runtime& rt) { return std::make_unique<SerializerDiskScheduler>(rt, 0); });

  b.AddAlarm(Mechanism::kSemaphore, "Private-semaphore alarm clock",
             [](Runtime& rt) { return std::make_unique<SemaphoreAlarmClock>(rt); });
  b.AddAlarm(Mechanism::kMonitor, "Hoare alarm clock",
             [](Runtime& rt) { return std::make_unique<MonitorAlarmClock>(rt); });

  return b.cases;
}

std::vector<ChaosFaultFamily> CalibrationFaultFamilies() {
  return {
      // Up to two seeded-probability signal drops per run. Matching either notify
      // flavour is essential: only semaphore V and Mesa Signal use NotifyOne — every
      // other mechanism family here broadcasts.
      {"lost-signal", "drop-signal:prob=0.25,fires=2"},
      // A stall longer than the chaos step budget: the first critical section entered
      // never ends, so every peer needing that lock starves until the step limit
      // diagnoses them.
      {"stall", "stall:nth=1,steps=30000"},
  };
}

double ChaosCalibrationTable::MinRecall() const {
  double min_recall = 1.0;
  for (const ChaosCalibrationRow& row : rows) {
    const double recall = row.outcome.Recall();
    if (recall >= 0.0 && recall < min_recall) {
      min_recall = recall;
    }
  }
  return min_recall;
}

int ChaosCalibrationTable::TotalFalsePositives() const {
  int total = 0;
  for (const ChaosCalibrationRow& row : rows) {
    total += row.outcome.clean_anomalies;
  }
  return total;
}

int ChaosCalibrationTable::QuarantinedRows() const {
  int count = 0;
  for (const ChaosCalibrationRow& row : rows) {
    count += row.quarantined ? 1 : 0;
  }
  return count;
}

std::string ChaosCalibrationTable::QuarantineJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"quarantined_cells\": " << QuarantinedRows() << ",\n";
  out << "  \"reaped\": " << supervisor.reaped << ",\n";
  out << "  \"crashed\": " << supervisor.crashed << ",\n";
  out << "  \"retried\": " << supervisor.retried << ",\n";
  out << "  \"cells\": [";
  bool first = true;
  for (const ChaosCalibrationRow& row : rows) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"id\": \""
        << QuarantineJsonEscape(row.problem + "/" + row.display + "/" + row.fault)
        << "\", \"quarantined\": " << (row.quarantined ? "true" : "false")
        << ", \"completed_seeds\": " << row.outcome.runs
        << ", \"skipped_seeds\": " << row.outcome.skipped
        << ", \"harmful\": " << row.outcome.harmful
        << ", \"detected_harmful\": " << row.outcome.detected_harmful;
    if (row.quarantined) {
      out << ", \"reason\": \"" << QuarantineJsonEscape(row.quarantine_reason) << "\"";
    }
    if (!row.last_postmortem_cause.empty() || !row.last_postmortem.empty()) {
      out << ", \"postmortem_cause\": \"" << QuarantineJsonEscape(row.last_postmortem_cause)
          << "\", \"postmortem\": \"" << QuarantineJsonEscape(row.last_postmortem) << "\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool ChaosCalibrationTable::WriteQuarantineFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << QuarantineJson();
    out.flush();
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

ChaosCalibrationTable RunChaosCalibration(int seeds_per_case, std::uint64_t base_seed,
                                          int workload_scale,
                                          const ParallelOptions& parallel,
                                          const ChaosSupervision& supervision) {
  const auto grid_start = std::chrono::steady_clock::now();
  ChaosCalibrationTable table;
  table.seeds_per_case = seeds_per_case;
  table.base_seed = base_seed;
  const std::vector<ChaosFaultFamily> families = CalibrationFaultFamilies();
  for (const ChaosCase& chaos_case : BuildChaosSuite(workload_scale)) {
    for (const ChaosFaultFamily& family : families) {
      const FaultPlan plan = MustParseFaultPlan(family.plan_text, /*seed=*/base_seed);
      ChaosCalibrationRow row;
      row.problem = chaos_case.problem;
      row.mechanism = chaos_case.mechanism;
      row.display = chaos_case.display;
      row.fault = family.name;
      row.plan = family.plan_text;
      // Per-row key namespace under checkpointing (see RunConformanceSuite): the
      // chunk keys alone cannot distinguish rows, and the scope pins the scale.
      ParallelOptions scoped = parallel;
      if (scoped.checkpoint != nullptr) {
        scoped.checkpoint_scope += "/chaos/" + chaos_case.problem + "/" +
                                   chaos_case.display + "/" + family.name + "/scale" +
                                   std::to_string(workload_scale);
      }
      ChaosTrial trial = chaos_case.trial;
      std::shared_ptr<chaos_internal::SupervisedRowState> row_state;
      if (supervision.enabled) {
        row_state = std::make_shared<chaos_internal::SupervisedRowState>();
        trial = chaos_internal::MakeSupervisedChaosTrial(chaos_case.trial,
                                                         supervision.options, row_state);
      }
      ParallelChaosResult sweep =
          ParallelSweepChaos(seeds_per_case, trial, plan, base_seed, scoped);
      row.outcome = std::move(sweep.outcome);
      if (row_state != nullptr) {
        std::lock_guard<std::mutex> lock(row_state->mu);
        row.quarantined = row_state->quarantined;
        row.quarantine_reason = row_state->quarantine_reason;
        row.last_postmortem_cause = row_state->last_postmortem_cause;
        row.last_postmortem = row_state->last_postmortem;
        table.supervisor += row_state->stats;
      }
      table.jobs = sweep.jobs;
      MergeWorkerTelemetry(table.workers, sweep.workers);
      table.rows.push_back(std::move(row));
    }
  }
  table.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - grid_start).count();
  return table;
}

std::optional<ChaosReplayResult> ReplayChaosTrial(const std::string& problem,
                                                  Mechanism mechanism,
                                                  const std::string& fault_family,
                                                  std::uint64_t seed,
                                                  std::uint64_t base_seed,
                                                  int workload_scale) {
  const ChaosFaultFamily* family = nullptr;
  const std::vector<ChaosFaultFamily> families = CalibrationFaultFamilies();
  for (const ChaosFaultFamily& candidate : families) {
    if (candidate.name == fault_family) {
      family = &candidate;
    }
  }
  if (!fault_family.empty() && family == nullptr) {
    return std::nullopt;
  }
  for (const ChaosCase& chaos_case : BuildChaosSuite(workload_scale)) {
    if (chaos_case.problem != problem || chaos_case.mechanism != mechanism) {
      continue;
    }
    if (family == nullptr) {
      return chaos_case.replay(seed, nullptr);
    }
    const FaultPlan plan = MustParseFaultPlan(family->plan_text, /*seed=*/base_seed);
    return chaos_case.replay(seed, &plan);
  }
  return std::nullopt;
}

}  // namespace syneval
