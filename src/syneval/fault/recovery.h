// Recovery policies: graceful degradation for waits that may never be signalled.
//
// The fault layer can make any wait unwinnable (a dropped V, a killed signaller). A
// mechanism that opts into recovery replaces its untimed predicate wait with
// RecoveringWait: a bounded sequence of deadline waits (RtCondVar::WaitFor) with
// exponential backoff, optionally re-broadcasting the condition on each timeout so one
// lost NotifyOne cannot strand a whole wait set. Rescue accounting distinguishes the
// two ways a timeout can end:
//
//   * rescue       — the deadline expired but the predicate had already become true:
//                    without the deadline the thread would have slept through a lost
//                    wakeup forever. The wait succeeds.
//   * genuine hang — every retry timed out with the predicate still false: the thread
//                    is waiting for state no one is going to produce. Recovery then
//                    degrades to a plain untimed wait so the anomaly detector (not the
//                    recovery layer) owns the diagnosis — recovery must mask lost
//                    *wakeups*, never lost *state*.
//
// RecoveryStats fields are atomics so OsRuntime mechanisms can share one bundle across
// threads; under DetRuntime the counts are exactly replayable.

#ifndef SYNEVAL_FAULT_RECOVERY_H_
#define SYNEVAL_FAULT_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "syneval/runtime/runtime.h"

namespace syneval {

struct RecoveryPolicy {
  // Deadline for the first wait attempt. Units are Runtime::NowNanos nanoseconds:
  // wall time under OsRuntime, scheduler steps × 1000 under DetRuntime.
  std::uint64_t timeout_nanos = 1'000'000;
  // Timed retries after the first timeout before declaring a genuine hang.
  int max_retries = 3;
  // Each retry's deadline is the previous one scaled by this factor.
  double backoff = 2.0;
  // On every timeout, broadcast the condition before retrying: if the timeout was
  // caused by a lost NotifyOne, the broadcast re-delivers it to every peer too.
  bool watchdog_broadcast = true;
};

struct RecoveryStats {
  std::atomic<std::uint64_t> timed_out_waits{0};  // WaitFor deadlines that expired.
  std::atomic<std::uint64_t> rescues{0};          // Timeouts with the predicate true.
  std::atomic<std::uint64_t> retries{0};          // Timed re-waits after a timeout.
  std::atomic<std::uint64_t> broadcasts{0};       // Watchdog broadcasts issued.
  std::atomic<std::uint64_t> genuine_hangs{0};    // Retry budgets exhausted.

  std::string Summary() const;
};

// Waits on `cv` until `predicate()` holds, applying `policy`. Must be called with
// `mutex` held (the predicate is evaluated under it); returns with `mutex` held and
// the predicate true. `on_wake`, when provided, runs after every resumption (the hook
// mechanisms use to keep their wakeup telemetry exact). Returns true when the wait was
// rescued at least once (i.e. a deadline, not a signal, unblocked it).
bool RecoveringWait(RtCondVar& cv, RtMutex& mutex, const std::function<bool()>& predicate,
                    const RecoveryPolicy& policy, RecoveryStats* stats,
                    const std::function<void()>& on_wake = nullptr);

}  // namespace syneval

#endif  // SYNEVAL_FAULT_RECOVERY_H_
