#include "syneval/fault/injector.h"

#include <string>
#include <utility>

#include "syneval/runtime/runtime.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/metrics.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed), states_(plan_.specs.size()) {}

FaultDecision FaultInjector::Decide(FaultSite site, std::uint32_t thread,
                                    std::uint64_t now_nanos) {
  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultSpec& spec = plan_.specs[i];
      if ((spec.site_mask & SiteBit(site)) == 0) {
        continue;
      }
      if (spec.thread != 0 && spec.thread != thread) {
        continue;
      }
      SpecState& state = states_[i];
      ++state.occurrences;
      if (spec.max_fires != 0 && state.fires >= spec.max_fires) {
        continue;
      }
      bool fires = false;
      if (spec.trigger.nth > 0) {
        fires = state.occurrences == spec.trigger.nth;
      } else {
        // Draw exactly one variate per matching occurrence so the RNG stream — and
        // with it the whole injection sequence — is a function of visit order alone.
        std::uniform_real_distribution<double> uniform(0.0, 1.0);
        fires = uniform(rng_) < spec.trigger.probability;
      }
      if (!fires || decision.fired) {
        // Counters advance for every spec even once a fault was chosen this visit;
        // only the first firing spec wins (one fault per site visit).
        continue;
      }
      ++state.fires;
      decision.fired = true;
      decision.kind = spec.kind;
      decision.steps = spec.steps;
      injected_.push_back(InjectedFault{spec.kind, site, thread, now_nanos});
    }
  }
  if (decision.fired && runtime_ != nullptr) {
    // Telemetry sits after the injector in the lock order; emit outside mu_ so the
    // tracer/registry locks are leaves here too.
    const std::string name = std::string("fault.") + FaultKindName(decision.kind);
    if (TelemetryTracer* tracer = runtime_->tracer()) {
      tracer->AddInstant(thread, name, "fault", now_nanos);
    }
    if (MetricsRegistry* metrics = runtime_->metrics()) {
      metrics->GetCounter("fault/injected_total").Add(1);
      metrics->GetCounter(name).Add(1);
    }
    if (FlightRecorder* flight = runtime_->flight_recorder()) {
      // arg = FaultKind so the postmortem can name the fault family even after the
      // label slot is evicted.
      flight->Record(thread, FlightEventType::kFaultFired, flight->InternLabel(name),
                     now_nanos, static_cast<std::uint64_t>(decision.kind));
    }
  }
  return decision;
}

std::vector<FaultInjector::InjectedFault> FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

int FaultInjector::injected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(injected_.size());
}

int FaultInjector::CountOf(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const InjectedFault& fault : injected_) {
    if (fault.kind == kind) {
      ++count;
    }
  }
  return count;
}

std::uint64_t FaultInjector::first_injection_nanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_.empty() ? 0 : injected_.front().now_nanos;
}

}  // namespace syneval
