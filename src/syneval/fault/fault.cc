#include "syneval/fault/fault.h"

#include <cstdlib>
#include <sstream>

namespace syneval {

namespace {

struct KindInfo {
  const char* token;      // Grammar spelling.
  FaultKind kind;
  unsigned site_mask;     // Sites the kind applies to.
};

// Grammar tokens. drop-notify/drop-broadcast narrow drop-signal to one notify flavour
// (most mechanisms in this library broadcast; only semaphore V and Mesa Signal use
// NotifyOne, so a notify-only drop would never fire for the others).
constexpr KindInfo kKinds[] = {
    {"drop-signal", FaultKind::kDropSignal,
     SiteBit(FaultSite::kNotifyOne) | SiteBit(FaultSite::kNotifyAll)},
    {"drop-notify", FaultKind::kDropSignal, SiteBit(FaultSite::kNotifyOne)},
    {"drop-broadcast", FaultKind::kDropSignal, SiteBit(FaultSite::kNotifyAll)},
    {"spurious-wakeup", FaultKind::kSpuriousWakeup, SiteBit(FaultSite::kWait)},
    {"stall", FaultKind::kStall, SiteBit(FaultSite::kLockPost)},
    {"delay-lock", FaultKind::kDelayLock, SiteBit(FaultSite::kLockPre)},
    {"kill-thread", FaultKind::kKillThread, kAllSites},
};

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool ParseSpec(const std::string& text, FaultSpec* spec, std::string* error) {
  const std::size_t colon = text.find(':');
  const std::string kind_token = text.substr(0, colon);
  const KindInfo* info = nullptr;
  for (const KindInfo& candidate : kKinds) {
    if (kind_token == candidate.token) {
      info = &candidate;
      break;
    }
  }
  if (info == nullptr) {
    *error = "unknown fault kind '" + kind_token + "'";
    return false;
  }
  spec->kind = info->kind;
  spec->site_mask = info->site_mask;
  if (colon == std::string::npos) {
    *error = "fault '" + kind_token + "' needs a trigger (nth=... or prob=...)";
    return false;
  }
  for (const std::string& kv : Split(text.substr(colon + 1), ',')) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      *error = "malformed key=value '" + kv + "' in '" + text + "'";
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    char* end = nullptr;
    if (key == "nth") {
      spec->trigger.nth = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "prob") {
      spec->trigger.probability = std::strtod(value.c_str(), &end);
    } else if (key == "steps") {
      spec->steps = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "thread") {
      spec->thread = static_cast<std::uint32_t>(std::strtoul(value.c_str(), &end, 10));
    } else if (key == "fires") {
      spec->max_fires = static_cast<int>(std::strtol(value.c_str(), &end, 10));
    } else {
      *error = "unknown key '" + key + "' in '" + text + "'";
      return false;
    }
    if (end == nullptr || *end != '\0' || value.empty()) {
      *error = "malformed value for '" + key + "' in '" + text + "'";
      return false;
    }
  }
  const bool has_nth = spec->trigger.nth > 0;
  const bool has_prob = spec->trigger.probability > 0.0;
  if (has_nth == has_prob) {
    *error = "fault '" + kind_token + "' needs exactly one of nth=... and prob=...";
    return false;
  }
  if (spec->trigger.probability < 0.0 || spec->trigger.probability > 1.0) {
    *error = "prob out of [0,1] in '" + text + "'";
    return false;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropSignal:
      return "drop-signal";
    case FaultKind::kSpuriousWakeup:
      return "spurious-wakeup";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDelayLock:
      return "delay-lock";
    case FaultKind::kKillThread:
      return "kill-thread";
  }
  return "?";
}

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kNotifyOne:
      return "notify-one";
    case FaultSite::kNotifyAll:
      return "notify-all";
    case FaultSite::kWait:
      return "wait";
    case FaultSite::kLockPre:
      return "lock-pre";
    case FaultSite::kLockPost:
      return "lock-post";
  }
  return "?";
}

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  // Re-derive the narrowest grammar token that maps to this kind+mask.
  const char* token = FaultKindName(kind);
  if (kind == FaultKind::kDropSignal) {
    if (site_mask == SiteBit(FaultSite::kNotifyOne)) {
      token = "drop-notify";
    } else if (site_mask == SiteBit(FaultSite::kNotifyAll)) {
      token = "drop-broadcast";
    }
  }
  os << token << ':';
  if (trigger.nth > 0) {
    os << "nth=" << trigger.nth;
  } else {
    os << "prob=" << trigger.probability;
  }
  if (kind == FaultKind::kStall || kind == FaultKind::kDelayLock) {
    os << ",steps=" << steps;
  }
  if (thread != 0) {
    os << ",thread=" << thread;
  }
  if (max_fires != 1) {
    os << ",fires=" << max_fires;
  }
  return os.str();
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultSpec& spec : specs) {
    if (!out.empty()) {
      out += ';';
    }
    out += spec.ToString();
  }
  return out;
}

bool ParseFaultPlan(const std::string& text, std::uint64_t seed, FaultPlan* plan,
                    std::string* error) {
  FaultPlan parsed;
  parsed.seed = seed;
  for (const std::string& part : Split(text, ';')) {
    if (part.empty()) {
      *error = "empty fault spec in '" + text + "'";
      *plan = FaultPlan();
      return false;
    }
    FaultSpec spec;
    if (!ParseSpec(part, &spec, error)) {
      *plan = FaultPlan();
      return false;
    }
    parsed.specs.push_back(spec);
  }
  if (parsed.specs.empty()) {
    *error = "empty fault plan";
    *plan = FaultPlan();
    return false;
  }
  *plan = std::move(parsed);
  return true;
}

FaultPlan MustParseFaultPlan(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  std::string error;
  if (!ParseFaultPlan(text, seed, &plan, &error)) {
    std::abort();  // Statically known plan string is malformed: a programming error.
  }
  return plan;
}

}  // namespace syneval
