#include "syneval/fault/recovery.h"

#include <sstream>

namespace syneval {

std::string RecoveryStats::Summary() const {
  std::ostringstream os;
  os << "timed_out=" << timed_out_waits.load() << " rescues=" << rescues.load()
     << " retries=" << retries.load() << " broadcasts=" << broadcasts.load()
     << " genuine_hangs=" << genuine_hangs.load();
  return os.str();
}

bool RecoveringWait(RtCondVar& cv, RtMutex& mutex, const std::function<bool()>& predicate,
                    const RecoveryPolicy& policy, RecoveryStats* stats,
                    const std::function<void()>& on_wake) {
  bool rescued = false;
  if (predicate()) {
    return rescued;
  }
  std::uint64_t timeout = policy.timeout_nanos;
  int timeouts = 0;
  while (true) {
    const bool notified = cv.WaitFor(mutex, timeout);
    if (on_wake) {
      on_wake();
    }
    if (predicate()) {
      if (!notified) {
        // The deadline, not a signal, unblocked a wait whose predicate was already
        // satisfied — without it the thread would have slept forever on a lost wakeup.
        stats->timed_out_waits.fetch_add(1, std::memory_order_relaxed);
        stats->rescues.fetch_add(1, std::memory_order_relaxed);
        rescued = true;
      }
      return rescued;
    }
    if (notified) {
      // Ordinary (possibly spurious) wakeup with the predicate still false: plain
      // Mesa-style re-wait, no retry budget consumed.
      continue;
    }
    stats->timed_out_waits.fetch_add(1, std::memory_order_relaxed);
    if (++timeouts > policy.max_retries) {
      break;
    }
    stats->retries.fetch_add(1, std::memory_order_relaxed);
    if (policy.watchdog_broadcast) {
      stats->broadcasts.fetch_add(1, std::memory_order_relaxed);
      cv.NotifyAll();
    }
    if (policy.backoff > 1.0) {
      timeout = static_cast<std::uint64_t>(static_cast<double>(timeout) * policy.backoff);
    }
  }
  // Retry budget exhausted with the predicate still false: the state this thread needs
  // was never produced. Degrade to an untimed wait so the hang is diagnosed (by the
  // anomaly detector) rather than papered over.
  stats->genuine_hangs.fetch_add(1, std::memory_order_relaxed);
  while (!predicate()) {
    cv.Wait(mutex);
    if (on_wake) {
      on_wake();
    }
  }
  return rescued;
}

}  // namespace syneval
