// Fault plans: seed-replayable descriptions of what to break, where, and when.
//
// Bloom's method judges mechanisms by how their solutions fail as much as by how they
// succeed, but the anomaly detector has only ever been exercised against faults that
// arise naturally under schedule search — which gives no ground truth for its recall.
// A FaultPlan supplies that ground truth: it names a set of faults (drop a signal,
// wake a waiter spuriously, stall a lock holder, delay an acquisition, kill a thread
// mid-protocol) with per-site triggers (fire on the nth matching occurrence, or with a
// seeded per-occurrence probability), and a FaultInjector (injector.h) replays the plan
// deterministically through the Runtime seam. Under DetRuntime the pair
// (plan, schedule seed) fully determines which faults fire and when.
//
// Trigger grammar (docs/FAULT_INJECTION.md has the full reference):
//
//   plan  := spec (';' spec)*
//   spec  := kind [':' key '=' value (',' key '=' value)*]
//   kind  := drop-signal | drop-notify | drop-broadcast | spurious-wakeup
//          | stall | delay-lock | kill-thread
//   key   := nth | prob | steps | thread | fires
//
// Examples:
//   "drop-signal:nth=2"            second signal (NotifyOne or NotifyAll) vanishes
//   "stall:nth=1,steps=20000"      first lock acquisition stalls 20000 scheduler steps
//   "kill-thread:prob=0.01"        every sync point kills the calling thread at 1%
//
// `nth` and `prob` are mutually exclusive within one spec; `fires` bounds how many
// times a spec may fire (default 1, 0 = unlimited); `thread` restricts the spec to one
// logical thread id (default 0 = any).

#ifndef SYNEVAL_FAULT_FAULT_H_
#define SYNEVAL_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace syneval {

// What to break.
enum class FaultKind : std::uint8_t {
  kDropSignal = 0,      // A NotifyOne/NotifyAll vanishes: no waiter wakes, no
                        // accounting fires — a lost signal below the mechanism.
  kSpuriousWakeup = 1,  // A Wait returns without any signal having been delivered.
  kStall = 2,           // The thread holds the lock it just acquired for `steps`
                        // scheduler steps (microseconds under OsRuntime) doing nothing.
  kDelayLock = 3,       // The acquisition is postponed by `steps` steps before the
                        // thread even contends for the lock.
  kKillThread = 4,      // The logical thread dies mid-protocol (ThreadKilledFault),
                        // leaving whatever it held in whatever state it was in.
};

// Where the runtime consults the injector. kLockPre is before contending for a mutex,
// kLockPost immediately after acquiring it; kWait is at RtCondVar::Wait/WaitFor entry;
// kNotifyOne/kNotifyAll are at the corresponding notify calls.
enum class FaultSite : std::uint8_t {
  kNotifyOne = 0,
  kNotifyAll = 1,
  kWait = 2,
  kLockPre = 3,
  kLockPost = 4,
};

const char* FaultKindName(FaultKind kind);
const char* FaultSiteName(FaultSite site);

constexpr unsigned SiteBit(FaultSite site) { return 1u << static_cast<unsigned>(site); }
constexpr unsigned kAllSites =
    SiteBit(FaultSite::kNotifyOne) | SiteBit(FaultSite::kNotifyAll) | SiteBit(FaultSite::kWait) |
    SiteBit(FaultSite::kLockPre) | SiteBit(FaultSite::kLockPost);

// When to fire. Exactly one of `nth` (1-based count of matching occurrences) and
// `probability` (per-occurrence chance drawn from the plan-seeded RNG) is active.
struct FaultTrigger {
  std::uint64_t nth = 0;
  double probability = 0.0;
};

struct FaultSpec {
  FaultKind kind = FaultKind::kDropSignal;
  unsigned site_mask = 0;      // Bitwise-or of SiteBit(...); derived from the kind.
  std::uint32_t thread = 0;    // Restrict to this logical thread id; 0 = any thread.
  std::uint64_t steps = 10;    // Stall/delay length (scheduler steps; µs under OS).
  int max_fires = 1;           // 0 = unlimited.
  FaultTrigger trigger;

  std::string ToString() const;
};

struct FaultPlan {
  std::uint64_t seed = 1;  // Seeds the injector's RNG for probability triggers.
  std::vector<FaultSpec> specs;

  std::string ToString() const;  // Re-renders the plan in the trigger grammar.
};

// Parses `text` in the trigger grammar above. Returns false (with a diagnostic in
// `*error`) on malformed input; `*plan` is left default-constructed in that case.
bool ParseFaultPlan(const std::string& text, std::uint64_t seed, FaultPlan* plan,
                    std::string* error);

// Parse-or-abort convenience for statically known plan strings (tests, chaos suite).
FaultPlan MustParseFaultPlan(const std::string& text, std::uint64_t seed);

// Thrown by runtime primitives to kill the calling logical thread when a kKillThread
// fault fires. Both runtimes catch it at the thread-body boundary and record the thread
// as finished; everything the thread held stays exactly as the kill left it.
struct ThreadKilledFault {};

}  // namespace syneval

#endif  // SYNEVAL_FAULT_FAULT_H_
