// FaultInjector: deterministic replay of a FaultPlan through the Runtime seam.
//
// Both runtimes consult the injector (when one is attached via
// Runtime::AttachFaultInjector) at every synchronization site: lock acquisition
// (before and after), condition wait entry, and the two notify flavours. Decide()
// matches the site against the plan's specs, advances per-spec occurrence counters,
// draws from the plan-seeded RNG for probability triggers, and returns the first spec
// that fires — so at most one fault is injected per site visit.
//
// Every fired fault is recorded (kind, site, thread, timestamp) and mirrored into the
// attached telemetry as a named instant event "fault.<kind>" plus fault/* counters, so
// a Perfetto trace of a chaos run shows exactly what was injected where.
//
// Locking: the injector has its own leaf mutex. Decide() is called with runtime
// scheduler locks held (DetRuntime's mu_ in particular), so it must never call back
// into runtime or detector objects; timestamps are therefore passed *in* by the caller
// rather than read via Runtime::NowNanos(), and the only outward calls are to the
// TelemetryTracer / MetricsRegistry, which sit strictly later in the lock order.
//
// Determinism: under DetRuntime, sites are visited in schedule order, so
// (plan, schedule seed) fully determines the injection sequence. Under OsRuntime the
// occurrence counters race with real preemption and nth-triggers select a
// nondeterministic occurrence; probability triggers remain seed-reproducible only in
// distribution.

#ifndef SYNEVAL_FAULT_INJECTOR_H_
#define SYNEVAL_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

#include "syneval/fault/fault.h"

namespace syneval {

class Runtime;

// Result of one Decide() call. `fired` false means proceed normally; otherwise `kind`
// says what to do and `steps` carries the stall/delay length.
struct FaultDecision {
  bool fired = false;
  FaultKind kind = FaultKind::kDropSignal;
  std::uint64_t steps = 0;

  explicit operator bool() const { return fired; }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Called by Runtime::AttachFaultInjector; gives the injector access to the runtime's
  // telemetry attachments (never to its scheduler state).
  void BindRuntime(Runtime* runtime) { runtime_ = runtime; }

  // Consult the plan at `site`, visited by logical thread `thread` at `now_nanos`
  // (the caller's clock: scheduler steps × 1000 under DetRuntime, wall ns under OS).
  FaultDecision Decide(FaultSite site, std::uint32_t thread, std::uint64_t now_nanos);

  struct InjectedFault {
    FaultKind kind = FaultKind::kDropSignal;
    FaultSite site = FaultSite::kNotifyOne;
    std::uint32_t thread = 0;
    std::uint64_t now_nanos = 0;
  };

  // Everything that fired, in injection order.
  std::vector<InjectedFault> injected() const;
  int injected_count() const;
  int CountOf(FaultKind kind) const;

  // Timestamp of the first injection; 0 when nothing fired yet.
  std::uint64_t first_injection_nanos() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  struct SpecState {
    std::uint64_t occurrences = 0;  // Matching site visits seen so far.
    int fires = 0;                  // Times this spec fired.
  };

  FaultPlan plan_;
  Runtime* runtime_ = nullptr;

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  std::vector<SpecState> states_;
  std::vector<InjectedFault> injected_;
};

}  // namespace syneval

#endif  // SYNEVAL_FAULT_INJECTOR_H_
