// Chaos calibration suite: the anomaly detector measured against ground truth.
//
// Every detector verdict in this repository so far was produced against faults that
// arose *naturally* under schedule search — which says nothing about what the detector
// misses, or how often it cries wolf. This suite closes that gap: for each footnote-2
// problem × mechanism pair it runs matched fault-on / fault-off schedule sweeps
// (SweepChaos, runtime/explore.h) under DetRuntime, injecting known faults through a
// seed-replayable FaultPlan, and reports
//
//   * injected-fault recall      — of the runs a fault demonstrably broke (they hung),
//                                  what fraction did the detector flag?
//   * false-positive rate        — on the *same* schedule seeds with no injector
//                                  attached, how often did the detector flag anything?
//   * mean steps to detection    — scheduler steps from first injection to diagnosis.
//
// All trials run under DetRuntime with a virtual-step budget, so the whole calibration
// table is a pure function of (case list, fault plans, seed range): byte-identical
// across machines, and checked as a golden file in CI (tests/golden/).

#ifndef SYNEVAL_FAULT_CHAOS_H_
#define SYNEVAL_FAULT_CHAOS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "syneval/fault/fault.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/parallel_sweep.h"
#include "syneval/runtime/supervisor.h"
#include "syneval/solutions/solution_info.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/trace/event.h"

namespace syneval {

// One chaos trial: run the case's workload under DetRuntime with the given seed,
// attaching a FaultInjector for `plan` when non-null, and report what happened.
using ChaosTrial = std::function<ChaosTrialOutcome(std::uint64_t seed, const FaultPlan* plan)>;

// The same trial with full observability retained: the logical trace (for Perfetto
// export) and the structured postmortem (empty() when the run was clean). Sweeps use
// ChaosTrial — which discards both — so the calibration loop never pays for keeping
// per-trial event vectors alive.
struct ChaosReplayResult {
  ChaosTrialOutcome outcome;
  std::vector<Event> events;
  Postmortem postmortem;
};

using ChaosReplayFn =
    std::function<ChaosReplayResult(std::uint64_t seed, const FaultPlan* plan)>;

struct ChaosCase {
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string problem;   // Canonical problem id ("bounded-buffer", ...).
  std::string display;   // Human-readable solution name.
  ChaosTrial trial;
  ChaosReplayFn replay;  // Same run as `trial`, returning the full capture.
};

// The footnote-2 problems, each under (at least) two mechanism families chosen to be
// anomaly-clean on fault-off sweeps — a case with natural anomalies could not measure
// a false-positive rate.
std::vector<ChaosCase> BuildChaosSuite(int workload_scale = 1);

// A named fault plan the calibration applies to every case. The plan's injector seed
// is re-derived per trial from the schedule seed, so probability triggers explore
// different injection points on different schedules while staying replayable.
struct ChaosFaultFamily {
  std::string name;       // Table label: "lost-signal", "stall", ...
  std::string plan_text;  // Trigger-grammar plan (see fault.h).
};

std::vector<ChaosFaultFamily> CalibrationFaultFamilies();

// Supervision policy for RunChaosCalibration (see runtime/supervisor.h). Disabled by
// default; when enabled, every trial of every row runs under a wall-clock deadline
// with a reaper (DetRuntime::RequestAbort through the TrialAbortSlot seam),
// catastrophic attempts — reaped or crashed — retry with exponential backoff, and a
// row that keeps dying is quarantined: its remaining seeds are skipped (counted in
// ChaosSweepOutcome::skipped), its folded seeds are kept, and the row carries the
// last harvested postmortem. With no catastrophic seeds the supervised table is
// field-by-field identical to the unsupervised one at any worker count — the seam
// adds no observable behavior to a healthy trial.
struct ChaosSupervision {
  bool enabled = false;
  // trial_deadline / max_attempts / retry_backoff / quarantine_after apply as
  // documented in SupervisorOptions. `sandbox` is ignored: chaos trials run
  // in-process under DetRuntime, whose abort seam the reaper uses.
  SupervisorOptions options;
};

struct ChaosCalibrationRow {
  std::string problem;
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string display;
  std::string fault;  // ChaosFaultFamily::name.
  std::string plan;   // The plan text, for replay.
  ChaosSweepOutcome outcome;

  // Supervision verdicts (all default on unsupervised runs). A reaped trial still
  // folds into `outcome` through DetRuntime's abort path — injector counts, step
  // count, diagnosis, postmortem — so a reaped genuine hang keeps counting toward
  // recall; quarantine only stops *future* seeds of the row.
  bool quarantined = false;
  std::string quarantine_reason;      // "" unless quarantined.
  std::string last_postmortem_cause;  // Last catastrophic attempt's harvest.
  std::string last_postmortem;
};

struct ChaosCalibrationTable {
  int seeds_per_case = 0;
  std::uint64_t base_seed = 1;
  std::vector<ChaosCalibrationRow> rows;

  // Pool accounting when the grid ran parallel (jobs == 1 for the serial path). The
  // per-worker shards are summed across every row's sweep; the table itself is
  // bit-identical at any worker count.
  int jobs = 1;
  double wall_seconds = 0;
  std::vector<WorkerTelemetry> workers;

  // Supervision accounting (all zero on unsupervised runs).
  SupervisorStats supervisor;

  // Worst (minimum) recall over rows that had harmful runs; 1.0 when none did.
  double MinRecall() const;
  // Total fault-off false positives across all rows.
  int TotalFalsePositives() const;

  int QuarantinedRows() const;
  // quarantine.json for the calibration grid: every row's verdict, with reasons and
  // harvested postmortems for the quarantined ones. Same spirit as
  // SupervisedSweepReport::QuarantineJson, keyed "problem/display/fault".
  std::string QuarantineJson() const;
  // Writes QuarantineJson() atomically (write "<path>.tmp", rename). False on I/O
  // failure.
  bool WriteQuarantineFile(const std::string& path) const;
};

// Runs the full suite × family grid. 2 × seeds_per_case trials per row; each row's
// seed range is sharded across `parallel` workers (the row/table order is fixed, and
// the outcome of every row is bit-identical to the serial sweep). With
// supervision.enabled, trials additionally run under the deadline/retry/quarantine
// policy above; healthy rows stay bit-identical, while a quarantined row's folded
// seed count depends on when the quarantine landed relative to the worker pool (only
// the *healthy* rows carry the determinism guarantee).
ChaosCalibrationTable RunChaosCalibration(int seeds_per_case = 20,
                                          std::uint64_t base_seed = 1,
                                          int workload_scale = 1,
                                          const ParallelOptions& parallel = {},
                                          const ChaosSupervision& supervision = {});

// Re-runs one (problem, mechanism, fault-family) calibration cell at `seed`, keeping
// the full logical trace and structured postmortem. `fault_family` may be "" for a
// fault-off replay; `base_seed` must match the calibration run's base seed for the
// injector derivation to reproduce the same run. Returns nullopt when the triple names
// no suite case (or a non-empty family is unknown).
std::optional<ChaosReplayResult> ReplayChaosTrial(const std::string& problem,
                                                  Mechanism mechanism,
                                                  const std::string& fault_family,
                                                  std::uint64_t seed,
                                                  std::uint64_t base_seed = 1,
                                                  int workload_scale = 1);

// Implementation seam, exposed so tests can drive the supervision wrapper against
// synthetic trials (hanging, crashing) that the real calibration suite deliberately
// does not contain.
namespace chaos_internal {

// Shared per-row supervision state. Workers of the row's sweep pool update it
// concurrently; a single mutex guards everything (catastrophic seeds are the rare
// path, so contention is negligible).
struct SupervisedRowState {
  std::mutex mu;
  bool quarantined = false;
  int catastrophic_seeds = 0;
  std::string quarantine_reason;
  std::string last_postmortem_cause;
  std::string last_postmortem;
  SupervisorStats stats;
};

// Wraps one row's trial in the supervision policy: quarantine short-circuit, per-
// attempt deadline/reaper through the TrialAbortSlot seam, catastrophic-only retry
// with exponential backoff. A healthy trial takes exactly one pass through the inner
// callback and returns its outcome untouched — bit-identity for healthy cells is
// structural, not a property of the policy parameters.
ChaosTrial MakeSupervisedChaosTrial(ChaosTrial inner, const SupervisorOptions& options,
                                    std::shared_ptr<SupervisedRowState> state);

}  // namespace chaos_internal

}  // namespace syneval

#endif  // SYNEVAL_FAULT_CHAOS_H_
