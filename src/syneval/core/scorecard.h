// Scorecard rendering: the machine-generated counterparts of the paper's Section 5
// discussion, printed by the bench table binaries and the examples.

#ifndef SYNEVAL_CORE_SCORECARD_H_
#define SYNEVAL_CORE_SCORECARD_H_

#include <string>
#include <vector>

#include "syneval/core/conformance.h"
#include "syneval/core/metrics.h"

namespace syneval {

// Generic fixed-width ASCII table.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// E3: mechanism x information-category support matrix with evidence footnotes.
std::string RenderExpressivenessTable();

// E8: footnote-2 test-set coverage, redundancy, and all minimal covers.
std::string RenderCoverageReport();

// E4: constraint-independence similarities and modification costs per mechanism.
std::string RenderIndependenceTable();

// E1/E2 et al.: conformance sweep outcomes.
std::string RenderConformanceTable(const std::vector<ConformanceResult>& results);

// Inventory of the solution matrix with structural metrics.
std::string RenderSolutionInventory();

}  // namespace syneval

#endif  // SYNEVAL_CORE_SCORECARD_H_
