// The problem catalog (Section 3 + footnote 2): canonical synchronization problems
// annotated with their constraints and information categories, plus the coverage and
// minimal-test-set computations that make "when is an evaluation complete?" a
// decidable question — the paper's key methodological move.

#ifndef SYNEVAL_CORE_PROBLEM_CATALOG_H_
#define SYNEVAL_CORE_PROBLEM_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "syneval/core/taxonomy.h"

namespace syneval {

struct ProblemSpec {
  std::string id;           // Matches SolutionInfo::problem.
  std::string display_name;
  std::string source;       // Literature origin.
  std::vector<Constraint> constraints;

  // Union of the categories referenced by all constraints.
  std::uint32_t CategoryMask() const;
};

// Every catalogued problem. The first six are exactly the paper's footnote-2 test set;
// the rest are the Section 5 extensions implemented in this repository.
const std::vector<ProblemSpec>& ProblemCatalog();

// Finds a problem spec by id; aborts on unknown ids (programming error).
const ProblemSpec& ProblemById(const std::string& id);

struct CoverageReport {
  std::uint32_t covered_mask = 0;
  std::vector<InfoCategory> missing;
  bool complete = false;  // All six categories covered.
};

// Which information categories a set of problems exercises.
CoverageReport Coverage(const std::vector<std::string>& problem_ids);

// All minimum-cardinality subsets of the catalog that cover all six categories
// (exact enumeration; the catalog is small). This operationalizes "a set of examples
// that includes all of these properties with a minimum of redundancy".
std::vector<std::vector<std::string>> MinimalCovers();

// Redundancy of a problem set: total category references minus distinct categories
// covered (0 = no category tested twice).
int Redundancy(const std::vector<std::string>& problem_ids);

}  // namespace syneval

#endif  // SYNEVAL_CORE_PROBLEM_CATALOG_H_
