#include "syneval/core/criteria.h"

#include <cassert>
#include <map>
#include <sstream>

#include "syneval/solutions/registry.h"

namespace syneval {

const char* SupportName(Support support) {
  switch (support) {
    case Support::kDirect:
      return "direct";
    case Support::kIndirect:
      return "indirect";
    case Support::kUnsupported:
      return "unsupported";
  }
  return "?";
}

namespace {

ExpressivenessEntry Entry(Mechanism mechanism, InfoCategory category, Support support,
                          std::string evidence) {
  ExpressivenessEntry entry;
  entry.mechanism = mechanism;
  entry.category = category;
  entry.support = support;
  entry.evidence = std::move(evidence);
  return entry;
}

std::vector<ExpressivenessEntry> BuildMatrix() {
  using M = Mechanism;
  using C = InfoCategory;
  using S = Support;
  std::vector<ExpressivenessEntry> matrix;

  // Semaphores: everything is possible (they are universal) but nothing is direct
  // beyond counting; Section 1's premise.
  matrix.push_back(Entry(M::kSemaphore, C::kRequestType, S::kIndirect,
                         "one semaphore per type plus hand protocols (CHP algorithms)"));
  matrix.push_back(Entry(M::kSemaphore, C::kRequestTime, S::kIndirect,
                         "requires a strong (FIFO) semaphore; weak P/V gives no order "
                         "(SemaphoreFcfsResource)"));
  matrix.push_back(Entry(M::kSemaphore, C::kParameters, S::kIndirect,
                         "private-semaphore pattern: hand-sorted lists + one semaphore "
                         "per request (SemaphoreDiskScheduler, SemaphoreSjnAllocator)"));
  matrix.push_back(Entry(M::kSemaphore, C::kSyncState, S::kIndirect,
                         "counts kept by hand under a mutex (readcount in CHP 1/2)"));
  matrix.push_back(Entry(M::kSemaphore, C::kLocalState, S::kIndirect,
                         "state mirrored into semaphore values (empty/full pair)"));
  matrix.push_back(Entry(M::kSemaphore, C::kHistory, S::kIndirect,
                         "event occurrence encoded as a 0/1 semaphore "
                         "(SemaphoreOneSlotBuffer)"));

  // Monitors (Section 5.2): "monitors allow access to all of the information types";
  // queues handle type and time, priority queues handle parameters, but
  // synchronization state "must be explicitly kept by the user".
  matrix.push_back(Entry(M::kMonitor, C::kRequestType, S::kDirect,
                         "one condition per request type (oktoread/oktowrite)"));
  matrix.push_back(Entry(M::kMonitor, C::kRequestTime, S::kDirect,
                         "condition queues are FIFO (MonitorFcfsResource)"));
  matrix.push_back(Entry(M::kMonitor, C::kParameters, S::kDirect,
                         "priority conditions: wait(p) (disk scheduler, alarm clock, "
                         "SJN)"));
  matrix.push_back(Entry(M::kMonitor, C::kSyncState, S::kIndirect,
                         "readers/busy counts kept as monitor data by hand; only queue "
                         "emptiness is provided (condition.queue)"));
  matrix.push_back(Entry(M::kMonitor, C::kLocalState, S::kDirect,
                         "resource state readable inside the monitor "
                         "(MonitorBoundedBuffer)"));
  matrix.push_back(Entry(M::kMonitor, C::kHistory, S::kIndirect,
                         "re-encoded as state flags (MonitorOneSlotBuffer has_item)"));

  // Path expressions (Section 5.1 conclusions, quoted in the evidence strings).
  matrix.push_back(Entry(M::kPathExpression, C::kRequestType, S::kDirect,
                         "operations are the path alphabet ('distinctions can be made "
                         "on the basis of request type')"));
  matrix.push_back(Entry(M::kPathExpression, C::kRequestTime, S::kIndirect,
                         "only via the added longest-waiting selection assumption "
                         "(PathFcfsResource fails under arbitrary selection)"));
  matrix.push_back(Entry(M::kPathExpression, C::kParameters, S::kUnsupported,
                         "'there is obviously no way to use parameter values in paths' "
                         "(no SCAN/SJN/alarm path solution exists)"));
  matrix.push_back(Entry(M::kPathExpression, C::kSyncState, S::kIndirect,
                         "automatic mutual exclusion expresses exclusion, but the state "
                         "itself is inaccessible; priorities need synchronization "
                         "procedures (Figure 1)"));
  matrix.push_back(Entry(M::kPathExpression, C::kLocalState, S::kUnsupported,
                         "'nor is local resource state information available' (until "
                         "Andler predicates)"));
  matrix.push_back(Entry(M::kPathExpression, C::kHistory, S::kDirect,
                         "the path IS the history constraint (PathOneSlotBuffer)"));

  // Serializers (Section 5.2): similar to monitors, plus crowds; priority queues and
  // local variables were later additions.
  matrix.push_back(Entry(M::kSerializer, C::kRequestType, S::kDirect,
                         "per-type guards, optionally per-type queues"));
  matrix.push_back(Entry(M::kSerializer, C::kRequestTime, S::kDirect,
                         "queues are FIFO; one queue + different guards gives FCFS "
                         "without the monitor's two-stage workaround (SerializerRwFcfs)"));
  matrix.push_back(Entry(M::kSerializer, C::kParameters, S::kIndirect,
                         "needs the priority-queue extension 'added later' "
                         "(SerializerDiskScheduler)"));
  matrix.push_back(Entry(M::kSerializer, C::kSyncState, S::kDirect,
                         "crowds maintain who is accessing the resource "
                         "(write_crowd.Empty() guards)"));
  matrix.push_back(Entry(M::kSerializer, C::kLocalState, S::kIndirect,
                         "needs the local-variables extension 'added later' "
                         "(SerializerBoundedBuffer count)"));
  matrix.push_back(Entry(M::kSerializer, C::kHistory, S::kIndirect,
                         "re-encoded as state flags (SerializerOneSlotBuffer has_item)"));

  // Conditional critical regions (methodology extension — not evaluated in the paper;
  // these verdicts are produced by applying Bloom's method to the CCR solution set).
  matrix.push_back(Entry(M::kConditionalRegion, C::kRequestType, S::kDirect,
                         "each operation is its own region with its own condition"));
  matrix.push_back(Entry(M::kConditionalRegion, C::kRequestTime, S::kIndirect,
                         "conditions cannot reference wait order; tickets must be "
                         "reified as shared state (CcrFcfsResource)"));
  matrix.push_back(Entry(M::kConditionalRegion, C::kParameters, S::kIndirect,
                         "own parameters appear directly in conditions (CcrAlarmClock: "
                         "when now >= due) but cross-request comparison needs hand-kept "
                         "pending sets (CcrSjnAllocator, CcrDiskScheduler)"));
  matrix.push_back(Entry(M::kConditionalRegion, C::kSyncState, S::kIndirect,
                         "who-is-inside must be counted by hand (readers/writing in the "
                         "CCR readers-writers), and priorities over waiters need "
                         "pending counters"));
  matrix.push_back(Entry(M::kConditionalRegion, C::kLocalState, S::kDirect,
                         "the awaited condition IS the resource-state predicate "
                         "(CcrBoundedBuffer: when count < capacity)"));
  matrix.push_back(Entry(M::kConditionalRegion, C::kHistory, S::kIndirect,
                         "re-encoded as state flags (CcrOneSlotBuffer has_item)"));

  // CSP message passing (the paper's Section 6 future work, evaluated by the same
  // method; see solutions/csp_solutions.h).
  matrix.push_back(Entry(M::kMessagePassing, C::kRequestType, S::kDirect,
                         "one channel per operation type; select arms distinguish them"));
  matrix.push_back(Entry(M::kMessagePassing, C::kRequestTime, S::kDirect,
                         "channel queues deliver in arrival order (CspFcfsResource is a "
                         "two-line server)"));
  matrix.push_back(Entry(M::kMessagePassing, C::kParameters, S::kDirect,
                         "parameters are message contents (CspDiskScheduler, "
                         "CspAlarmClock, CspSjnAllocator)"));
  matrix.push_back(Entry(M::kMessagePassing, C::kSyncState, S::kIndirect,
                         "the server counts admissions in local variables — private, "
                         "but still hand-maintained (readers count in the RW server)"));
  matrix.push_back(Entry(M::kMessagePassing, C::kLocalState, S::kDirect,
                         "the server owns the resource; guards read it directly "
                         "(CspBoundedBuffer)"));
  matrix.push_back(Entry(M::kMessagePassing, C::kHistory, S::kDirect,
                         "history is the server's program counter (CspOneSlotBuffer's "
                         "receive-deposit-then-receive-fetch loop)"));

  assert(matrix.size() ==
         static_cast<std::size_t>(kNumMechanisms) *
             static_cast<std::size_t>(kNumInfoCategories));
  return matrix;
}

}  // namespace

const std::vector<ExpressivenessEntry>& ExpressivenessMatrix() {
  static const std::vector<ExpressivenessEntry>* matrix =
      new std::vector<ExpressivenessEntry>(BuildMatrix());
  return *matrix;
}

const ExpressivenessEntry& Expressiveness(Mechanism mechanism, InfoCategory category) {
  for (const ExpressivenessEntry& entry : ExpressivenessMatrix()) {
    if (entry.mechanism == mechanism && entry.category == category) {
      return entry;
    }
  }
  assert(false && "missing expressiveness cell");
  static const ExpressivenessEntry empty{};
  return empty;
}

std::vector<std::string> CrossCheckExpressiveness() {
  // Problems whose *defining* information category makes their solutions witnesses for
  // the matrix: a mechanism whose solution needed sync procedures (or was flagged
  // indirect) cannot be rated kDirect for that category. The readers/writers problems
  // are deliberately absent: their indirectness can stem from the priority constraint
  // rather than the request-type category (Figure 1's procedures implement priority).
  static const std::map<std::string, InfoCategory> kWitness = {
      {"one-slot-buffer", InfoCategory::kHistory},
      {"fcfs-resource", InfoCategory::kRequestTime},
      {"disk-scan", InfoCategory::kParameters},
      {"sjn-allocator", InfoCategory::kParameters},
      {"alarm-clock", InfoCategory::kParameters},
  };
  std::vector<std::string> inconsistencies;
  for (const SolutionInfo& info : AllSolutionInfos()) {
    const auto witness = kWitness.find(info.problem);
    if (witness == kWitness.end()) {
      continue;
    }
    const ExpressivenessEntry& entry = Expressiveness(info.mechanism, witness->second);
    const bool solution_indirect = !info.direct || info.sync_procedures > 0;
    if (solution_indirect && entry.support == Support::kDirect) {
      std::ostringstream os;
      os << MechanismName(info.mechanism) << "/" << info.problem << " needed "
         << info.sync_procedures << " sync procedures but " << InfoCategoryName(witness->second)
         << " is rated direct";
      inconsistencies.push_back(os.str());
    }
  }
  return inconsistencies;
}

}  // namespace syneval
