// Markdown evaluation report: the full Section 2-5 pipeline rendered as one
// self-contained document — what a mechanism designer would attach to a proposal.

#ifndef SYNEVAL_CORE_REPORT_H_
#define SYNEVAL_CORE_REPORT_H_

#include <ostream>
#include <string>

#include "syneval/core/conformance.h"

namespace syneval {

struct ReportOptions {
  int conformance_seeds = 15;  // Schedules per conformance case.
  int workload_scale = 1;
  std::string title = "Synchronization-mechanism evaluation (Bloom 1979 methodology)";
  // Worker pool for the conformance and chaos sweeps (runtime/parallel_sweep.h). The
  // report's tables are bit-identical at any worker count; only wall time changes.
  ParallelOptions parallel;
};

// Runs the whole evaluation (coverage, expressiveness, independence, conformance) and
// writes a markdown report to `out`. The conformance sweep dominates the runtime.
void WriteEvaluationReport(std::ostream& out, const ReportOptions& options = {});

// Writes the static-analysis section: per-solution verdicts from AnalyzeRegistry()
// (model-checker results for path-expression solutions, wait-predicate lint for
// monitor/CCR solutions) side by side with the dynamic evidence in `results`, plus the
// cross-validation both directions of the methodology require — every
// statically-proven-safe solution must be anomaly-free in the conformance sweep, and
// the deliberately-broken crossed-gates counterexample word must replay to a real
// deadlock under DetRuntime confirmed by the anomaly detector. Included in
// WriteEvaluationReport between the conformance and telemetry sections.
void WriteStaticAnalysisSection(std::ostream& out,
                                const std::vector<ConformanceResult>& results);

// Drives a contended bounded-buffer workload against every mechanism's solution over
// OsRuntime with a metrics registry attached, then writes the per-mechanism contention
// profile (wait/hold percentiles, signals, wakeups per admission, max queue depth) as a
// markdown table — the quantities the mechanisms record about themselves. Included in
// WriteEvaluationReport as its own section; writes a one-line note instead when the
// build has SYNEVAL_TELEMETRY=OFF.
void WriteTelemetryProfileSection(std::ostream& out, int workload_scale = 1);

// Runs the chaos calibration grid (syneval/fault/chaos.h): every footnote-2 problem ×
// mechanism pair swept under matched fault-on / fault-off schedules per fault family,
// rendered as the detector's calibration table — injected-fault recall, false-positive
// rate on the matched clean sweeps, and mean steps from injection to detection.
// Included in WriteEvaluationReport between the static-analysis and DPOR sections.
// `seeds_per_case` trades precision for report runtime (each row costs
// 2 × seeds_per_case deterministic runs). Returns the computed table so later
// sections (the DPOR cross-tab) can reuse it without re-running the grid.
struct ChaosCalibrationTable;
ChaosCalibrationTable WriteChaosCalibrationSection(std::ostream& out,
                                                   int seeds_per_case = 10,
                                                   const ParallelOptions& parallel = {});

// Runs the exhaustive DPOR suite (analysis/dpor.h) and cross-tabulates the three
// verification layers per suite cell: the DPOR verdict (proof / counterexample, with
// the DPOR-vs-naive execution counts), the static path-expression / lint verdict for
// the same (mechanism, problem) where a model exists, and the chaos lost-signal
// recall from `chaos` (pass the table returned by WriteChaosCalibrationSection to
// avoid re-running the grid; nullptr leaves the column unpopulated). Included in
// WriteEvaluationReport between the chaos and telemetry sections.
void WriteDporCrossTabSection(std::ostream& out, const ParallelOptions& parallel = {},
                              const ChaosCalibrationTable* chaos = nullptr);

}  // namespace syneval

#endif  // SYNEVAL_CORE_REPORT_H_
