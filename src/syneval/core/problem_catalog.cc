#include "syneval/core/problem_catalog.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace syneval {

const char* ConstraintKindName(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kExclusion:
      return "exclusion";
    case ConstraintKind::kPriority:
      return "priority";
  }
  return "?";
}

const char* InfoCategoryName(InfoCategory category) {
  switch (category) {
    case InfoCategory::kRequestType:
      return "request-type";
    case InfoCategory::kRequestTime:
      return "request-time";
    case InfoCategory::kParameters:
      return "parameters";
    case InfoCategory::kSyncState:
      return "sync-state";
    case InfoCategory::kLocalState:
      return "local-state";
    case InfoCategory::kHistory:
      return "history";
  }
  return "?";
}

std::string CategoryMaskToString(std::uint32_t mask) {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < kNumInfoCategories; ++i) {
    if ((mask & (1u << i)) != 0) {
      if (!first) {
        os << ", ";
      }
      os << InfoCategoryName(static_cast<InfoCategory>(i));
      first = false;
    }
  }
  return os.str();
}

std::uint32_t Constraint::CategoryMask() const {
  std::uint32_t mask = 0;
  for (InfoCategory category : categories) {
    mask |= CategoryBit(category);
  }
  return mask;
}

std::uint32_t ProblemSpec::CategoryMask() const {
  std::uint32_t mask = 0;
  for (const Constraint& constraint : constraints) {
    mask |= constraint.CategoryMask();
  }
  return mask;
}

namespace {

Constraint MakeConstraint(std::string id, ConstraintKind kind,
                          std::vector<InfoCategory> categories, std::string description) {
  Constraint constraint;
  constraint.id = std::move(id);
  constraint.kind = kind;
  constraint.categories = std::move(categories);
  constraint.description = std::move(description);
  return constraint;
}

std::vector<ProblemSpec> BuildCatalog() {
  std::vector<ProblemSpec> catalog;

  // --- The paper's footnote-2 test set -------------------------------------------------
  {
    ProblemSpec p;
    p.id = "bounded-buffer";
    p.display_name = "Bounded buffer";
    p.source = "Dijkstra 1968";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kLocalState},
                       "deposit excluded while full, remove excluded while empty"),
        MakeConstraint("mutex", ConstraintKind::kExclusion, {InfoCategory::kSyncState},
                       "concurrent deposits (and removes) exclude each other"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "fcfs-resource";
    p.display_name = "First-come-first-served resource";
    p.source = "footnote 2 ('a first come first serve scheme for request time')";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion, {InfoCategory::kSyncState},
                       "one holder at a time"),
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kRequestTime},
                       "admissions in request order"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "rw-readers-priority";
    p.display_name = "Readers-priority database";
    p.source = "Courtois, Heymans & Parnas 1971, problem 1";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kRequestType, InfoCategory::kSyncState},
                       "a writer excludes everyone; readers share"),
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kRequestType},
                       "waiting readers admitted before waiting writers"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "disk-scan";
    p.display_name = "Disk-head (elevator) scheduler";
    p.source = "Hoare 1974";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion, {InfoCategory::kSyncState},
                       "one transfer at a time"),
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kParameters},
                       "SCAN order over requested track numbers"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "alarm-clock";
    p.display_name = "Alarm clock";
    p.source = "Hoare 1974";
    p.constraints = {
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kParameters},
                       "wake sleepers in due-time order, not before their due time"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "one-slot-buffer";
    p.display_name = "One-slot buffer";
    p.source = "Campbell & Habermann 1974";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion, {InfoCategory::kHistory},
                       "deposit and remove strictly alternate, starting with deposit"),
    };
    catalog.push_back(std::move(p));
  }

  // --- Section 5 extensions ------------------------------------------------------------
  {
    ProblemSpec p;
    p.id = "rw-writers-priority";
    p.display_name = "Writers-priority database";
    p.source = "Courtois, Heymans & Parnas 1971, problem 2";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kRequestType, InfoCategory::kSyncState},
                       "a writer excludes everyone; readers share"),
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kRequestType},
                       "waiting writers admitted before waiting readers"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "rw-fcfs";
    p.display_name = "FCFS database";
    p.source = "Section 5.2 (the type/time conflict example)";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kRequestType, InfoCategory::kSyncState},
                       "a writer excludes everyone; readers share"),
        MakeConstraint("priority", ConstraintKind::kPriority,
                       {InfoCategory::kRequestTime, InfoCategory::kRequestType},
                       "admissions in request order regardless of type"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "rw-fair";
    p.display_name = "Fair database (bounded overtaking)";
    p.source = "Hoare 1974";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kRequestType, InfoCategory::kSyncState},
                       "a writer excludes everyone; readers share"),
        MakeConstraint("priority", ConstraintKind::kPriority,
                       {InfoCategory::kRequestType, InfoCategory::kSyncState},
                       "reader batches and writers alternate; neither class starves"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "sjn-allocator";
    p.display_name = "Shortest-job-next allocator";
    p.source = "Hoare 1974 (scheduled waits)";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion, {InfoCategory::kSyncState},
                       "one holder at a time"),
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kParameters},
                       "minimum service estimate first"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "dining-philosophers";
    p.display_name = "Dining philosophers";
    p.source = "Dijkstra 1968 (paper reference [9])";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kRequestType, InfoCategory::kSyncState},
                       "neighbouring philosophers never eat simultaneously"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "cigarette-smokers";
    p.display_name = "Cigarette smokers";
    p.source = "Patil 1971 / Parnas 1975 (semaphore expressiveness argument)";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion,
                       {InfoCategory::kRequestType, InfoCategory::kLocalState},
                       "only the smoker whose ingredient is missing may take the pair; "
                       "agent and smokers alternate"),
    };
    catalog.push_back(std::move(p));
  }
  {
    ProblemSpec p;
    p.id = "disk-fcfs";
    p.display_name = "Disk scheduler, FCFS baseline";
    p.source = "baseline for E9";
    p.constraints = {
        MakeConstraint("exclusion", ConstraintKind::kExclusion, {InfoCategory::kSyncState},
                       "one transfer at a time"),
        MakeConstraint("priority", ConstraintKind::kPriority, {InfoCategory::kRequestTime},
                       "admissions in request order"),
    };
    catalog.push_back(std::move(p));
  }
  return catalog;
}

}  // namespace

const std::vector<ProblemSpec>& ProblemCatalog() {
  static const std::vector<ProblemSpec>* catalog = new std::vector<ProblemSpec>(BuildCatalog());
  return *catalog;
}

const ProblemSpec& ProblemById(const std::string& id) {
  for (const ProblemSpec& spec : ProblemCatalog()) {
    if (spec.id == id) {
      return spec;
    }
  }
  assert(false && "unknown problem id");
  static const ProblemSpec empty{};
  return empty;
}

CoverageReport Coverage(const std::vector<std::string>& problem_ids) {
  CoverageReport report;
  for (const std::string& id : problem_ids) {
    report.covered_mask |= ProblemById(id).CategoryMask();
  }
  for (int i = 0; i < kNumInfoCategories; ++i) {
    if ((report.covered_mask & (1u << i)) == 0) {
      report.missing.push_back(static_cast<InfoCategory>(i));
    }
  }
  report.complete = report.missing.empty();
  return report;
}

std::vector<std::vector<std::string>> MinimalCovers() {
  const std::vector<ProblemSpec>& catalog = ProblemCatalog();
  const std::uint32_t full = (1u << kNumInfoCategories) - 1;
  const std::size_t n = catalog.size();
  std::vector<std::vector<std::string>> best;
  std::size_t best_size = n + 1;
  for (std::uint32_t subset = 1; subset < (1u << n); ++subset) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(subset));
    if (size > best_size) {
      continue;
    }
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if ((subset & (1u << i)) != 0) {
        mask |= catalog[i].CategoryMask();
      }
    }
    if (mask != full) {
      continue;
    }
    if (size < best_size) {
      best.clear();
      best_size = size;
    }
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < n; ++i) {
      if ((subset & (1u << i)) != 0) {
        ids.push_back(catalog[i].id);
      }
    }
    best.push_back(std::move(ids));
  }
  return best;
}

int Redundancy(const std::vector<std::string>& problem_ids) {
  int references = 0;
  std::uint32_t mask = 0;
  for (const std::string& id : problem_ids) {
    const std::uint32_t m = ProblemById(id).CategoryMask();
    references += __builtin_popcount(m);
    mask |= m;
  }
  return references - __builtin_popcount(mask);
}

}  // namespace syneval
