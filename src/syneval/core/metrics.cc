#include "syneval/core/metrics.h"

#include <algorithm>
#include <cctype>

#include "syneval/solutions/registry.h"

namespace syneval {

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        tokens.push_back(std::string(1, c));  // Punctuation is a token of its own.
      }
    }
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

namespace {

std::size_t LcsLength(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  // Classic O(|a|*|b|) LCS with a rolling row; fragment texts are small.
  std::vector<std::size_t> prev(b.size() + 1, 0);
  std::vector<std::size_t> curr(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::string ConcatFragments(const SolutionInfo& info) {
  std::string all;
  for (const ConstraintFragment& fragment : info.fragments) {
    all += fragment.code;
    all += " ; ";
  }
  return all;
}

const ConstraintFragment* FindFragment(const SolutionInfo& info,
                                       const std::string& constraint_id) {
  for (const ConstraintFragment& fragment : info.fragments) {
    if (fragment.constraint == constraint_id) {
      return &fragment;
    }
  }
  return nullptr;
}

}  // namespace

double TokenSimilarity(const std::string& a, const std::string& b) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) {
    return 1.0;
  }
  if (ta.empty() || tb.empty()) {
    return 0.0;
  }
  return 2.0 * static_cast<double>(LcsLength(ta, tb)) /
         static_cast<double>(ta.size() + tb.size());
}

std::optional<double> FragmentSimilarity(const SolutionInfo& a, const SolutionInfo& b,
                                         const std::string& constraint_id) {
  const ConstraintFragment* fa = FindFragment(a, constraint_id);
  const ConstraintFragment* fb = FindFragment(b, constraint_id);
  if (fa == nullptr || fb == nullptr) {
    return std::nullopt;
  }
  return TokenSimilarity(fa->code, fb->code);
}

double ModificationCost(const SolutionInfo& a, const SolutionInfo& b) {
  return 1.0 - TokenSimilarity(ConcatFragments(a), ConcatFragments(b));
}

std::vector<IndependenceRow> IndependenceTable(
    const std::vector<std::pair<std::string, std::string>>& problem_pairs,
    const std::string& constraint_id) {
  static const Mechanism kMechanisms[] = {Mechanism::kSemaphore, Mechanism::kMonitor,
                                          Mechanism::kPathExpression, Mechanism::kSerializer,
                                          Mechanism::kConditionalRegion,
                                          Mechanism::kMessagePassing};
  std::vector<IndependenceRow> rows;
  for (const auto& [problem_a, problem_b] : problem_pairs) {
    for (Mechanism mechanism : kMechanisms) {
      const std::optional<SolutionInfo> a = FindSolution(mechanism, problem_a);
      const std::optional<SolutionInfo> b = FindSolution(mechanism, problem_b);
      if (!a || !b) {
        continue;  // Mechanism cannot express one side: no row (itself E3 data).
      }
      const std::optional<double> similarity = FragmentSimilarity(*a, *b, constraint_id);
      if (!similarity) {
        continue;
      }
      IndependenceRow row;
      row.mechanism = mechanism;
      row.problem_a = problem_a;
      row.problem_b = problem_b;
      row.constraint = constraint_id;
      row.similarity = *similarity;
      row.modification_cost = ModificationCost(*a, *b);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<std::pair<std::string, std::string>> CanonicalIndependencePairs() {
  return {
      {"rw-readers-priority", "rw-writers-priority"},
      {"rw-readers-priority", "rw-fcfs"},
      {"rw-writers-priority", "rw-fcfs"},
  };
}

}  // namespace syneval
