#include "syneval/core/scorecard.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "syneval/core/criteria.h"
#include "syneval/core/problem_catalog.h"
#include "syneval/solutions/registry.h"

namespace syneval {

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t width : widths) {
      os << std::string(width + 2, '-') << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(header);
  print_rule();
  for (const auto& row : rows) {
    print_row(row);
  }
  print_rule();
  return os.str();
}

std::string RenderExpressivenessTable() {
  static const Mechanism kMechanisms[] = {Mechanism::kSemaphore, Mechanism::kMonitor,
                                          Mechanism::kPathExpression, Mechanism::kSerializer,
                                          Mechanism::kConditionalRegion,
                                          Mechanism::kMessagePassing};
  std::vector<std::string> header = {"information category"};
  for (Mechanism mechanism : kMechanisms) {
    header.push_back(MechanismName(mechanism));
  }
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < kNumInfoCategories; ++i) {
    const auto category = static_cast<InfoCategory>(i);
    std::vector<std::string> row = {InfoCategoryName(category)};
    for (Mechanism mechanism : kMechanisms) {
      row.push_back(SupportName(Expressiveness(mechanism, category).support));
    }
    rows.push_back(std::move(row));
  }
  std::ostringstream os;
  os << "Expressive power: mechanism x information category (Section 4.1 / 5)\n";
  os << RenderTable(header, rows);
  os << "\nEvidence:\n";
  for (const ExpressivenessEntry& entry : ExpressivenessMatrix()) {
    os << "  " << MechanismName(entry.mechanism) << " / " << InfoCategoryName(entry.category)
       << " [" << SupportName(entry.support) << "]: " << entry.evidence << "\n";
  }
  const std::vector<std::string> inconsistencies = CrossCheckExpressiveness();
  if (inconsistencies.empty()) {
    os << "\nCross-check against solution structure: consistent.\n";
  } else {
    os << "\nCross-check inconsistencies:\n";
    for (const std::string& inconsistency : inconsistencies) {
      os << "  " << inconsistency << "\n";
    }
  }
  return os.str();
}

std::string RenderCoverageReport() {
  std::ostringstream os;
  os << "Problem catalog and information-category coverage (Section 3)\n";
  std::vector<std::string> header = {"problem", "source", "categories"};
  std::vector<std::vector<std::string>> rows;
  for (const ProblemSpec& spec : ProblemCatalog()) {
    rows.push_back({spec.id, spec.source, CategoryMaskToString(spec.CategoryMask())});
  }
  os << RenderTable(header, rows);

  const std::vector<std::string> footnote2 = {"bounded-buffer",      "fcfs-resource",
                                              "rw-readers-priority", "disk-scan",
                                              "alarm-clock",         "one-slot-buffer"};
  const CoverageReport coverage = Coverage(footnote2);
  os << "\nThe paper's footnote-2 test set covers: "
     << CategoryMaskToString(coverage.covered_mask)
     << (coverage.complete ? " (complete)" : " (INCOMPLETE)") << ", redundancy "
     << Redundancy(footnote2) << ".\n";

  os << "\nMinimal covering subsets of the catalog:\n";
  for (const std::vector<std::string>& cover : MinimalCovers()) {
    os << "  {";
    for (std::size_t i = 0; i < cover.size(); ++i) {
      os << (i == 0 ? " " : ", ") << cover[i];
    }
    os << " }  redundancy " << Redundancy(cover) << "\n";
  }
  return os.str();
}

std::string RenderIndependenceTable() {
  std::ostringstream os;
  os << "Constraint independence (Section 4.2 / 5.1.2)\n";
  os << "similarity: shared 'exclusion' fragment across the two solutions (1.0 = "
        "identical)\n";
  os << "mod-cost:   1 - similarity of the whole solutions (1.0 = full rewrite)\n\n";
  std::vector<std::string> header = {"mechanism", "problem A", "problem B", "similarity",
                                     "mod-cost"};
  std::vector<std::vector<std::string>> rows;
  for (const IndependenceRow& row : IndependenceTable(CanonicalIndependencePairs(),
                                                      "exclusion")) {
    std::ostringstream sim;
    sim << std::fixed << std::setprecision(2) << row.similarity;
    std::ostringstream cost;
    cost << std::fixed << std::setprecision(2) << row.modification_cost;
    rows.push_back({MechanismName(row.mechanism), row.problem_a, row.problem_b, sim.str(),
                    cost.str()});
  }
  os << RenderTable(header, rows);
  return os.str();
}

std::string RenderConformanceTable(const std::vector<ConformanceResult>& results) {
  std::ostringstream os;
  os << "Conformance: oracle checks over deterministic schedule sweeps\n";
  std::vector<std::string> header = {"mechanism", "problem",  "solution", "violations",
                                     "anomalies", "expected", "verdict"};
  std::vector<std::vector<std::string>> rows;
  for (const ConformanceResult& result : results) {
    std::ostringstream violations;
    violations << result.outcome.failures << "/" << result.outcome.runs;
    rows.push_back({MechanismName(result.spec.mechanism), result.spec.problem,
                    result.spec.display, violations.str(), result.outcome.anomalies.Summary(),
                    result.spec.expect_violations ? "violations" : "clean",
                    result.AsExpected() ? "as expected" : "UNEXPECTED"});
  }
  os << RenderTable(header, rows);
  for (const ConformanceResult& result : results) {
    if (result.outcome.failures > 0) {
      os << "\n" << result.spec.display << " first counterexample (seed "
         << (result.outcome.failing_seeds.empty() ? 0 : result.outcome.failing_seeds.front())
         << "): " << result.outcome.first_failure << "\n";
    }
    if (result.outcome.anomalies.total() > 0) {
      os << "\n" << result.spec.display << " first anomaly (replayable): "
         << result.outcome.first_anomaly << "\n";
    }
  }
  return os.str();
}

std::string RenderSolutionInventory() {
  std::ostringstream os;
  os << "Solution matrix (structural metrics per Section 4)\n";
  std::vector<std::string> header = {"mechanism", "problem", "solution", "direct",
                                     "sync-procs", "hand-kept vars"};
  std::vector<std::vector<std::string>> rows;
  for (const SolutionInfo& info : AllSolutionInfos()) {
    rows.push_back({MechanismName(info.mechanism), info.problem, info.display_name,
                    info.direct ? "yes" : "no", std::to_string(info.sync_procedures),
                    std::to_string(info.shared_variables)});
  }
  os << RenderTable(header, rows);
  return os.str();
}

}  // namespace syneval
