// Conformance engine: runs every (mechanism, problem) solution under many
// deterministic schedules and checks the problem oracle on each trace.
//
// This is the machinery behind the paper's behavioural claims: a solution either
// conforms on every explored schedule, or the engine exhibits a seed-replayable
// counterexample. Cases marked `expect_violations` are the paper's own negative
// results — most prominently Figure 1's readers-priority violation (footnote 3).

#ifndef SYNEVAL_CORE_CONFORMANCE_H_
#define SYNEVAL_CORE_CONFORMANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "syneval/runtime/explore.h"
#include "syneval/runtime/parallel_sweep.h"
#include "syneval/solutions/solution_info.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/trace/event.h"

namespace syneval {

struct ConformanceCase {
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string problem;
  std::string display;
  // True when the paper predicts this solution violates its oracle on some schedules.
  bool expect_violations = false;
  // Runs one trial under DetRuntime with the given schedule seed; returns a report
  // whose message is empty on success and an oracle/runtime diagnostic on failure,
  // plus the anomaly counts observed by the attached detector.
  std::function<TrialReport(std::uint64_t)> trial;
};

// The full conformance suite over the solution matrix. `workload_scale` multiplies the
// per-thread operation counts (1 = quick test size).
std::vector<ConformanceCase> BuildConformanceSuite(int workload_scale = 1);

struct ConformanceResult {
  ConformanceCase spec;  // trial is preserved for replay.
  SweepOutcome outcome;
  // Pass criterion: clean when !expect_violations, violating when expect_violations.
  bool AsExpected() const {
    return spec.expect_violations ? outcome.failures > 0 : outcome.failures == 0;
  }
};

// Sweeps one case over `seeds` schedules. `parallel` shards the sweep across a
// work-stealing pool (runtime/parallel_sweep.h); the default runs serially and the
// outcome is bit-identical either way.
ConformanceResult RunConformanceCase(const ConformanceCase& conformance_case, int seeds,
                                     std::uint64_t base_seed = 1,
                                     const ParallelOptions& parallel = {});

// Sweeps the whole suite, each case's seed range parallelized per `parallel`.
std::vector<ConformanceResult> RunConformanceSuite(int seeds, int workload_scale = 1,
                                                   const ParallelOptions& parallel = {});

// One conformance trial re-run with full observability retained: the logical trace
// (for Perfetto export) and the structured postmortem (empty() when the trial was
// clean). Sweeps keep only the TrialReport; replay is for --trace exports and the
// postmortem CLI.
struct ConformanceReplay {
  TrialReport report;
  std::vector<Event> events;
  Postmortem postmortem;
};

ConformanceReplay ReplayConformanceTrial(const ConformanceCase& conformance_case,
                                         std::uint64_t seed);

// Directed reproduction of the paper's footnote-3 anomaly (experiment E1): forces the
// exact interleaving the footnote describes — writer1 writing, writer2 blocked at
// openwrite holding requestwrite, a reader arriving and blocking at requestread — and
// then checks the readers-priority oracle. Deterministic for every schedule seed:
// returns the oracle violation (non-empty) on success of the reproduction.
std::string RunFigure1AnomalyScenario(std::uint64_t seed);

}  // namespace syneval

#endif  // SYNEVAL_CORE_CONFORMANCE_H_
