// Expressive-power assessment (Section 4.1 applied as in Section 5): for each
// mechanism and each information category, how directly can constraints referencing
// that category be expressed?
//
// The verdicts below encode the paper's Section 5 conclusions; every verdict carries
// evidence that points at concrete artifacts in this repository (the solution whose
// structure demonstrates it), so the table is auditable against code rather than
// being a bare opinion matrix. The cross-check in criteria.cc validates the encoded
// verdicts against the structural facts registered by the solutions themselves
// (sync_procedures > 0 or direct == false must match a non-direct verdict).

#ifndef SYNEVAL_CORE_CRITERIA_H_
#define SYNEVAL_CORE_CRITERIA_H_

#include <string>
#include <vector>

#include "syneval/core/taxonomy.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

enum class Support {
  kDirect,       // A native construct handles the category.
  kIndirect,     // Expressible, but via hand-kept state, extra procedures, or an
                 // added assumption.
  kUnsupported,  // Not expressible within the mechanism (without later extensions).
};

const char* SupportName(Support support);

struct ExpressivenessEntry {
  Mechanism mechanism = Mechanism::kSemaphore;
  InfoCategory category = InfoCategory::kRequestType;
  Support support = Support::kDirect;
  std::string evidence;  // Pointer to the construct / solution demonstrating it.
};

// The full mechanism x category matrix (24 entries).
const std::vector<ExpressivenessEntry>& ExpressivenessMatrix();

// Looks up one cell.
const ExpressivenessEntry& Expressiveness(Mechanism mechanism, InfoCategory category);

// Cross-checks the encoded matrix against the structural metadata registered by the
// solutions: a mechanism whose solution for a category-defining problem needed
// synchronization procedures (or was flagged non-direct) must not be rated kDirect for
// that category. Returns human-readable inconsistencies (empty = consistent).
std::vector<std::string> CrossCheckExpressiveness();

}  // namespace syneval

#endif  // SYNEVAL_CORE_CRITERIA_H_
