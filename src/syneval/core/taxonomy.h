// The paper's taxonomy (Sections 2-3): synchronization schemes are sets of constraints;
// constraints are exclusion or priority constraints; and constraints are distinguished
// by the categories of information their conditions reference.

#ifndef SYNEVAL_CORE_TAXONOMY_H_
#define SYNEVAL_CORE_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace syneval {

// "if condition then exclude process A"  /  "if condition then A has priority over B".
enum class ConstraintKind : std::uint8_t {
  kExclusion,  // Consistency: keep interfering processes out.
  kPriority,   // Efficiency/ordering: who gets in first.
};

const char* ConstraintKindName(ConstraintKind kind);

// Section 3's six information categories.
enum class InfoCategory : std::uint8_t {
  kRequestType = 0,  // Which operation is being requested.
  kRequestTime = 1,  // When, relative to other requests.
  kParameters = 2,   // Arguments of the request (track number, wake time, ...).
  kSyncState = 3,    // Who is currently inside / waiting (needed only for sync).
  kLocalState = 4,   // State the resource has anyway (buffer full/empty).
  kHistory = 5,      // Whether some event has already occurred.
};

inline constexpr int kNumInfoCategories = 6;

const char* InfoCategoryName(InfoCategory category);

// Bitmask helpers used by the coverage computation.
constexpr std::uint32_t CategoryBit(InfoCategory category) {
  return 1u << static_cast<std::uint32_t>(category);
}

std::string CategoryMaskToString(std::uint32_t mask);

// One constraint of a synchronization scheme, annotated with the information
// categories its condition references.
struct Constraint {
  std::string id;  // Stable id used to match fragments across solutions, e.g. "exclusion".
  ConstraintKind kind = ConstraintKind::kExclusion;
  std::vector<InfoCategory> categories;
  std::string description;

  std::uint32_t CategoryMask() const;
};

}  // namespace syneval

#endif  // SYNEVAL_CORE_TAXONOMY_H_
