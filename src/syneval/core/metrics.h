// Constraint-independence metrics (Section 4.2).
//
// The paper's test: "if the problems share some constraints, but differ in others, then
// the common constraints should be similarly implemented in both solutions". We make
// that measurable: each solution registers, per constraint, the synchronization text
// realizing it (SolutionInfo::fragments); for a pair of related problems we compute the
// token-level similarity of the shared-constraint fragments. High similarity (→ 1.0)
// means the constraint was implemented independently; low similarity means changing one
// constraint forced rewriting the other — the Figure 1 → Figure 2 phenomenon.

#ifndef SYNEVAL_CORE_METRICS_H_
#define SYNEVAL_CORE_METRICS_H_

#include <optional>
#include <string>
#include <vector>

#include "syneval/solutions/solution_info.h"

namespace syneval {

// Splits synchronization text into lowercase word/symbol tokens.
std::vector<std::string> Tokenize(const std::string& text);

// Dice-style token similarity: 2*LCS(a,b) / (|a|+|b|), in [0,1]. 1.0 = identical.
double TokenSimilarity(const std::string& a, const std::string& b);

// Similarity of one constraint's implementation across two solutions; nullopt when
// either solution lacks a fragment for that constraint.
std::optional<double> FragmentSimilarity(const SolutionInfo& a, const SolutionInfo& b,
                                         const std::string& constraint_id);

// Overall modification cost of turning solution `a` into solution `b`: 1 - similarity
// of the full fragment sets (0 = no change needed, 1 = full rewrite).
double ModificationCost(const SolutionInfo& a, const SolutionInfo& b);

// One row of the constraint-independence table (E4).
struct IndependenceRow {
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string problem_a;
  std::string problem_b;
  std::string constraint;       // The shared constraint compared.
  double similarity = 0.0;      // Of the shared constraint's fragments.
  double modification_cost = 0.0;  // Of the whole solution pair.
};

// Computes the independence table for the given problem pairs across every mechanism
// that implements both problems. `constraint_id` names the constraint expected to be
// shared (typically "exclusion").
std::vector<IndependenceRow> IndependenceTable(
    const std::vector<std::pair<std::string, std::string>>& problem_pairs,
    const std::string& constraint_id);

// The canonical Section 5.1.2 pairs: readers-priority vs writers-priority (same
// exclusion, different priority) and readers-priority vs FCFS (same exclusion,
// different information type for priority).
std::vector<std::pair<std::string, std::string>> CanonicalIndependencePairs();

}  // namespace syneval

#endif  // SYNEVAL_CORE_METRICS_H_
