#include "syneval/core/conformance.h"

#include <memory>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/problems/oracles.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/dining_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/solutions/smokers_solutions.h"

namespace syneval {

namespace {

// Capture sink for ReplayConformanceTrial: when set, the next TrialProbe::Finish on
// this thread also hands out the full trace and the structured postmortem. The
// conformance trials are opaque std::functions built over ~30 solution closures, so a
// thread-local seam here beats threading a capture parameter through every factory;
// sweep workers never set it, so sweeps are unaffected.
struct TrialCapture {
  std::vector<Event> events;
  Postmortem postmortem;
};
thread_local TrialCapture* g_trial_capture = nullptr;

// Per-trial anomaly probe: wires a fresh detector into the runtime (so every primitive
// and mechanism built afterwards registers with it) and into the trace (starvation
// watchdog + anomaly marks), then folds the findings into the TrialReport. Must be
// constructed after the DetRuntime and before the solution under test.
struct TrialProbe {
  AnomalyDetector detector;
  TraceRecorder trace;
  FlightRecorder flight{FlightRecorder::Options::ForTrial()};

  explicit TrialProbe(DetRuntime& runtime) {
    detector.AttachTrace(&trace);
    trace.SetObserver(&detector);
    trace.SetSecondaryObserver(&flight);
    runtime.AttachAnomalyDetector(&detector);
    runtime.AttachFlightRecorder(&flight);
  }

  TrialReport Finish(const DetRuntime::RunResult& result,
                     const std::function<std::string(const std::vector<Event>&)>& check) {
    TrialReport report;
    report.anomalies = detector.counts();
    report.anomaly_report = detector.Report("; ");
    report.flight_evicted = flight.evicted();
    if (!result.completed) {
      report.message = "runtime: " + result.report;
    } else {
      report.message = check(trace.Events());
      if (report.message.empty() && !report.anomalies.Clean()) {
        // The oracle passed but the detector flagged something (e.g. starvation):
        // surface it as the trial's failure so the sweep records the seed.
        report.message = "anomaly: " + report.anomaly_report;
      }
    }
    if (!result.completed || !report.anomalies.Clean()) {
      Postmortem pm = BuildPostmortem(flight, &detector);
      report.postmortem_cause = pm.cause;
      report.postmortem = pm.ToText();
      if (g_trial_capture != nullptr) {
        g_trial_capture->postmortem = std::move(pm);
      }
    }
    if (g_trial_capture != nullptr) {
      g_trial_capture->events = trace.Events();
    }
    return report;
  }
};

// Generic trial runner: build a fresh runtime/probe/solution/workload per seed, drive it
// to completion, then apply the oracle to the recorded trace.
template <typename SolutionT>
std::function<TrialReport(std::uint64_t)> MakeTrial(
    std::function<std::unique_ptr<SolutionT>(Runtime&)> make,
    std::function<ThreadList(Runtime&, SolutionT&, TraceRecorder&)> spawn,
    std::function<std::string(const std::vector<Event>&)> check) {
  return [make = std::move(make), spawn = std::move(spawn),
          check = std::move(check)](std::uint64_t seed) -> TrialReport {
    DetRuntime runtime(MakeRandomSchedule(seed));
    TrialProbe probe(runtime);
    std::unique_ptr<SolutionT> solution = make(runtime);
    ThreadList threads = spawn(runtime, *solution, probe.trace);
    const DetRuntime::RunResult result = runtime.Run();
    return probe.Finish(result, check);
  };
}

// Trial runner for server-process (CSP) solutions: as MakeTrial, plus a terminator
// thread that joins the clients and shuts the server down so the deterministic run can
// complete.
template <typename Concrete>
std::function<TrialReport(std::uint64_t)> MakeCspTrial(
    std::function<std::unique_ptr<Concrete>(Runtime&)> make,
    std::function<ThreadList(Runtime&, Concrete&, TraceRecorder&)> spawn,
    std::function<std::string(const std::vector<Event>&)> check) {
  return [make = std::move(make), spawn = std::move(spawn),
          check = std::move(check)](std::uint64_t seed) -> TrialReport {
    DetRuntime runtime(MakeRandomSchedule(seed));
    TrialProbe probe(runtime);
    std::unique_ptr<Concrete> solution = make(runtime);
    ThreadList threads = spawn(runtime, *solution, probe.trace);
    std::vector<RtThread*> clients;
    for (auto& thread : threads) {
      clients.push_back(thread.get());
    }
    Concrete* raw_solution = solution.get();
    ThreadList terminator;
    terminator.push_back(runtime.StartThread("terminator", [raw_solution, clients] {
      for (RtThread* client : clients) {
        client->Join();
      }
      raw_solution->Shutdown();
    }));
    const DetRuntime::RunResult result = runtime.Run();
    return probe.Finish(result, check);
  };
}

struct SuiteBuilder {
  int scale = 1;
  std::vector<ConformanceCase> cases;

  RwWorkloadParams RwParams() const {
    RwWorkloadParams params;
    params.ops_per_reader = 3 * scale;
    params.ops_per_writer = 2 * scale;
    return params;
  }

  BufferWorkloadParams BufferParams() const {
    BufferWorkloadParams params;
    params.items_per_producer = 4 * scale;
    return params;
  }

  void AddRw(Mechanism mechanism, const std::string& problem, const std::string& display,
             std::function<std::unique_ptr<ReadersWritersIface>(Runtime&)> make,
             RwPolicy policy, RwStrictness strictness, bool expect_violations = false) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = problem;
    c.display = display;
    c.expect_violations = expect_violations;
    const RwWorkloadParams params = RwParams();
    c.trial = MakeTrial<ReadersWritersIface>(
        std::move(make),
        [params](Runtime& rt, ReadersWritersIface& rw, TraceRecorder& trace) {
          return SpawnReadersWritersWorkload(rt, rw, trace, params);
        },
        [policy, strictness](const std::vector<Event>& events) {
          return CheckReadersWriters(events, policy, 8, strictness);
        });
    cases.push_back(std::move(c));
  }

  void AddBoundedBuffer(Mechanism mechanism, const std::string& display,
                        std::function<std::unique_ptr<BoundedBufferIface>(Runtime&)> make,
                        int capacity) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "bounded-buffer";
    c.display = display;
    const BufferWorkloadParams params = BufferParams();
    c.trial = MakeTrial<BoundedBufferIface>(
        std::move(make),
        [params](Runtime& rt, BoundedBufferIface& buffer, TraceRecorder& trace) {
          return SpawnBoundedBufferWorkload(rt, buffer, trace, params);
        },
        [capacity](const std::vector<Event>& events) {
          return CheckBoundedBuffer(events, capacity);
        });
    cases.push_back(std::move(c));
  }

  void AddOneSlot(Mechanism mechanism, const std::string& display,
                  std::function<std::unique_ptr<OneSlotBufferIface>(Runtime&)> make) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "one-slot-buffer";
    c.display = display;
    const BufferWorkloadParams params = BufferParams();
    c.trial = MakeTrial<OneSlotBufferIface>(
        std::move(make),
        [params](Runtime& rt, OneSlotBufferIface& buffer, TraceRecorder& trace) {
          return SpawnOneSlotBufferWorkload(rt, buffer, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckOneSlotBuffer(events); });
    cases.push_back(std::move(c));
  }

  void AddFcfs(Mechanism mechanism, const std::string& display,
               std::function<std::unique_ptr<FcfsResourceIface>(Runtime&)> make,
               bool expect_violations = false) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "fcfs-resource";
    c.display = display;
    c.expect_violations = expect_violations;
    FcfsWorkloadParams params;
    params.ops_per_thread = 3 * scale;
    c.trial = MakeTrial<FcfsResourceIface>(
        std::move(make),
        [params](Runtime& rt, FcfsResourceIface& resource, TraceRecorder& trace) {
          return SpawnFcfsWorkload(rt, resource, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckFcfsResource(events); });
    cases.push_back(std::move(c));
  }

  void AddDisk(Mechanism mechanism, const std::string& problem, const std::string& display,
               std::function<std::unique_ptr<DiskSchedulerIface>(Runtime&)> make,
               bool scan) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = problem;
    c.display = display;
    DiskWorkloadParams params;
    params.requests_per_thread = 3 * scale;
    params.tracks = 100;
    c.trial = [make = std::move(make), params, scan](std::uint64_t seed) -> TrialReport {
      DetRuntime runtime(MakeRandomSchedule(seed));
      TrialProbe probe(runtime);
      VirtualDisk disk(params.tracks, 0);
      std::unique_ptr<DiskSchedulerIface> scheduler = make(runtime);
      DiskWorkloadParams seeded = params;
      seeded.seed = seed;
      ThreadList threads = SpawnDiskWorkload(runtime, *scheduler, disk, probe.trace, seeded);
      const DetRuntime::RunResult result = runtime.Run();
      return probe.Finish(result, [&disk, scan](const std::vector<Event>& events) {
        if (disk.violations() != 0) {
          return std::string("virtual disk observed concurrent access");
        }
        return scan ? CheckScanDiskSchedule(events, 0) : CheckFcfsDiskSchedule(events);
      });
    };
    cases.push_back(std::move(c));
  }

  void AddAlarm(Mechanism mechanism, const std::string& display,
                std::function<std::unique_ptr<AlarmClockIface>(Runtime&)> make) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "alarm-clock";
    c.display = display;
    AlarmWorkloadParams params;
    params.naps_per_sleeper = 2 * scale;
    c.trial = MakeTrial<AlarmClockIface>(
        std::move(make),
        [params](Runtime& rt, AlarmClockIface& clock, TraceRecorder& trace) {
          return SpawnAlarmClockWorkload(rt, clock, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckAlarmClock(events, 0); });
    cases.push_back(std::move(c));
  }

  void AddSmokers(Mechanism mechanism, const std::string& display,
                  std::function<std::unique_ptr<SmokersTableIface>(Runtime&)> make,
                  bool expect_violations = false) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "cigarette-smokers";
    c.display = display;
    c.expect_violations = expect_violations;
    SmokersWorkloadParams params;
    params.rounds = 5 * scale;
    c.trial = [make = std::move(make), params](std::uint64_t seed) -> TrialReport {
      DetRuntime runtime(MakeRandomSchedule(seed));
      TrialProbe probe(runtime);
      std::unique_ptr<SmokersTableIface> table = make(runtime);
      SmokersWorkloadParams seeded = params;
      seeded.seed = seed;
      ThreadList threads = SpawnSmokersWorkload(runtime, *table, probe.trace, seeded);
      const DetRuntime::RunResult result = runtime.Run();
      return probe.Finish(result,
                          [](const std::vector<Event>& events) { return CheckSmokers(events); });
    };
    cases.push_back(std::move(c));
  }

  void AddDining(Mechanism mechanism, const std::string& display,
                 std::function<std::unique_ptr<DiningTableIface>(Runtime&)> make,
                 bool expect_violations = false) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "dining-philosophers";
    c.display = display;
    c.expect_violations = expect_violations;
    DiningWorkloadParams params;
    params.meals_per_philosopher = 2 * scale;
    c.trial = MakeTrial<DiningTableIface>(
        std::move(make),
        [params](Runtime& rt, DiningTableIface& table, TraceRecorder& trace) {
          return SpawnDiningWorkload(rt, table, trace, params);
        },
        [](const std::vector<Event>& events) {
          return CheckDiningPhilosophers(events, 5);
        });
    cases.push_back(std::move(c));
  }

  void AddSjn(Mechanism mechanism, const std::string& display,
              std::function<std::unique_ptr<SjnAllocatorIface>(Runtime&)> make) {
    ConformanceCase c;
    c.mechanism = mechanism;
    c.problem = "sjn-allocator";
    c.display = display;
    SjnWorkloadParams params;
    params.requests_per_thread = 2 * scale;
    c.trial = MakeTrial<SjnAllocatorIface>(
        std::move(make),
        [params](Runtime& rt, SjnAllocatorIface& allocator, TraceRecorder& trace) {
          return SpawnSjnWorkload(rt, allocator, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckSjnAllocator(events); });
    cases.push_back(std::move(c));
  }
};

}  // namespace

std::vector<ConformanceCase> BuildConformanceSuite(int workload_scale) {
  SuiteBuilder b;
  b.scale = workload_scale;

  // Bounded buffer (capacity 3 everywhere).
  b.AddBoundedBuffer(Mechanism::kSemaphore, "Dijkstra bounded buffer",
                     [](Runtime& rt) { return std::make_unique<SemaphoreBoundedBuffer>(rt, 3); },
                     3);
  b.AddBoundedBuffer(Mechanism::kMonitor, "Hoare bounded buffer",
                     [](Runtime& rt) { return std::make_unique<MonitorBoundedBuffer>(rt, 3); },
                     3);
  b.AddBoundedBuffer(Mechanism::kPathExpression, "CH74 bounded buffer path",
                     [](Runtime& rt) { return std::make_unique<PathBoundedBuffer>(rt, 3); }, 3);
  b.AddBoundedBuffer(
      Mechanism::kSerializer, "Serializer bounded buffer",
      [](Runtime& rt) { return std::make_unique<SerializerBoundedBuffer>(rt, 3); }, 3);

  // One-slot buffer.
  b.AddOneSlot(Mechanism::kSemaphore, "One-slot buffer (semaphores)",
               [](Runtime& rt) { return std::make_unique<SemaphoreOneSlotBuffer>(rt); });
  b.AddOneSlot(Mechanism::kMonitor, "One-slot buffer (monitor)",
               [](Runtime& rt) { return std::make_unique<MonitorOneSlotBuffer>(rt); });
  b.AddOneSlot(Mechanism::kPathExpression, "path deposit; remove end",
               [](Runtime& rt) { return std::make_unique<PathOneSlotBuffer>(rt); });
  b.AddOneSlot(Mechanism::kSerializer, "One-slot buffer (serializer)",
               [](Runtime& rt) { return std::make_unique<SerializerOneSlotBuffer>(rt); });

  // Readers priority. The CHP semaphore algorithms only deliver their priority with
  // *strong* semaphores; under our weak semaphores and adversarial schedules the
  // priority is violated on some schedules — a documented finding, so the suite
  // expects violations there (the exclusion constraint is separately verified by the
  // oracle's overlap check on every schedule). Figure 1 is the paper's own predicted
  // violation, reproduced by the directed footnote-3 scenario.
  b.AddRw(Mechanism::kSemaphore, "rw-readers-priority",
          "CHP algorithm 1 (weak semaphores: priority not guaranteed)",
          [](Runtime& rt) { return std::make_unique<SemaphoreRwReadersPriority>(rt); },
          RwPolicy::kReadersPriority, RwStrictness::kArrivalOrder,
          /*expect_violations=*/true);
  b.AddRw(Mechanism::kMonitor, "rw-readers-priority", "Readers-priority monitor",
          [](Runtime& rt) { return std::make_unique<MonitorRwReadersPriority>(rt); },
          RwPolicy::kReadersPriority, RwStrictness::kStrict);
  {
    ConformanceCase c;
    c.mechanism = Mechanism::kPathExpression;
    c.problem = "rw-readers-priority";
    c.display = "Figure 1 (predicted violation, footnote 3)";
    c.expect_violations = true;
    c.trial = [](std::uint64_t seed) {
      TrialReport report;
      report.message = RunFigure1AnomalyScenario(seed);
      return report;
    };
    b.cases.push_back(std::move(c));
  }
  b.AddRw(Mechanism::kPathExpression, "rw-readers-priority", "Predicate paths (Andler)",
          [](Runtime& rt) { return std::make_unique<PathExprRwPredicates>(rt); },
          RwPolicy::kReadersPriority, RwStrictness::kStrict);
  b.AddRw(Mechanism::kSerializer, "rw-readers-priority", "Readers-priority serializer",
          [](Runtime& rt) { return std::make_unique<SerializerRwReadersPriority>(rt); },
          RwPolicy::kReadersPriority, RwStrictness::kStrict);

  // Writers priority. Figure 2's admission spans several path operations, so the
  // arrival-order oracle is the sound one for it (as for semaphores).
  b.AddRw(Mechanism::kSemaphore, "rw-writers-priority",
          "CHP algorithm 2 (weak semaphores: priority not guaranteed)",
          [](Runtime& rt) { return std::make_unique<SemaphoreRwWritersPriority>(rt); },
          RwPolicy::kWritersPriority, RwStrictness::kArrivalOrder,
          /*expect_violations=*/true);
  b.AddRw(Mechanism::kMonitor, "rw-writers-priority", "Writers-priority monitor",
          [](Runtime& rt) { return std::make_unique<MonitorRwWritersPriority>(rt); },
          RwPolicy::kWritersPriority, RwStrictness::kStrict);
  b.AddRw(Mechanism::kPathExpression, "rw-writers-priority", "Figure 2",
          [](Runtime& rt) { return std::make_unique<PathExprRwFigure2>(rt); },
          RwPolicy::kWritersPriority, RwStrictness::kArrivalOrder);
  b.AddRw(Mechanism::kSerializer, "rw-writers-priority", "Writers-priority serializer",
          [](Runtime& rt) { return std::make_unique<SerializerRwWritersPriority>(rt); },
          RwPolicy::kWritersPriority, RwStrictness::kStrict);

  // FCFS readers/writers (the type/time conflict, E5).
  b.AddRw(Mechanism::kMonitor, "rw-fcfs", "FCFS monitor (two-stage queuing)",
          [](Runtime& rt) { return std::make_unique<MonitorRwFcfs>(rt); }, RwPolicy::kFcfs,
          RwStrictness::kStrict);
  b.AddRw(Mechanism::kSerializer, "rw-fcfs", "FCFS serializer (one queue)",
          [](Runtime& rt) { return std::make_unique<SerializerRwFcfs>(rt); }, RwPolicy::kFcfs,
          RwStrictness::kStrict);

  // Fair readers/writers.
  b.AddRw(Mechanism::kMonitor, "rw-fair", "Fair monitor (Hoare 1974)",
          [](Runtime& rt) { return std::make_unique<MonitorRwFair>(rt); }, RwPolicy::kFair,
          RwStrictness::kStrict);

  // FCFS resource.
  b.AddFcfs(Mechanism::kSemaphore, "Strong semaphore",
            [](Runtime& rt) { return std::make_unique<SemaphoreFcfsResource>(rt); });
  b.AddFcfs(Mechanism::kMonitor, "FCFS monitor",
            [](Runtime& rt) { return std::make_unique<MonitorFcfsResource>(rt); });
  b.AddFcfs(Mechanism::kPathExpression, "path acquire end (longest-waiting selection)",
            [](Runtime& rt) { return std::make_unique<PathFcfsResource>(rt); });
  b.AddFcfs(Mechanism::kPathExpression,
            "path acquire end (arbitrary selection — predicted violation)",
            [](Runtime& rt) {
              PathController::Options options;
              options.policy = PathController::SelectionPolicy::kArbitrary;
              options.arbitrary_seed = 99;
              return std::make_unique<PathFcfsResource>(rt, options);
            },
            /*expect_violations=*/true);
  b.AddFcfs(Mechanism::kSerializer, "FCFS serializer",
            [](Runtime& rt) { return std::make_unique<SerializerFcfsResource>(rt); });

  // Disk scheduler.
  b.AddDisk(Mechanism::kSemaphore, "disk-scan", "SCAN via private semaphores",
            [](Runtime& rt) { return std::make_unique<SemaphoreDiskScheduler>(rt, 0); },
            /*scan=*/true);
  b.AddDisk(Mechanism::kMonitor, "disk-scan", "Hoare dischead",
            [](Runtime& rt) { return std::make_unique<MonitorDiskScheduler>(rt, 0); },
            /*scan=*/true);
  b.AddDisk(Mechanism::kSerializer, "disk-scan", "SCAN serializer",
            [](Runtime& rt) { return std::make_unique<SerializerDiskScheduler>(rt, 0); },
            /*scan=*/true);
  b.AddDisk(Mechanism::kPathExpression, "disk-fcfs", "path disk end (FCFS only)",
            [](Runtime& rt) { return std::make_unique<PathDiskFcfs>(rt); },
            /*scan=*/false);

  // Alarm clock.
  b.AddAlarm(Mechanism::kSemaphore, "Private-semaphore alarm clock",
             [](Runtime& rt) { return std::make_unique<SemaphoreAlarmClock>(rt); });
  b.AddAlarm(Mechanism::kMonitor, "Hoare alarm clock",
             [](Runtime& rt) { return std::make_unique<MonitorAlarmClock>(rt); });
  b.AddAlarm(Mechanism::kSerializer, "Serializer alarm clock",
             [](Runtime& rt) { return std::make_unique<SerializerAlarmClock>(rt); });

  // Dining philosophers (5 seats). The naive protocol is the classic deadlock: the
  // deterministic runtime must find it on some schedules.
  b.AddDining(Mechanism::kSemaphore, "Naive forks (predicted deadlock)",
              [](Runtime& rt) { return std::make_unique<SemaphoreDiningNaive>(rt, 5); },
              /*expect_violations=*/true);
  b.AddDining(Mechanism::kSemaphore, "Ordered forks",
              [](Runtime& rt) { return std::make_unique<SemaphoreDiningOrdered>(rt, 5); });
  b.AddDining(Mechanism::kSemaphore, "Dijkstra's butler",
              [](Runtime& rt) { return std::make_unique<SemaphoreDiningButler>(rt, 5); });
  b.AddDining(Mechanism::kMonitor, "Dijkstra state monitor",
              [](Runtime& rt) { return std::make_unique<MonitorDining>(rt, 5); });
  b.AddDining(Mechanism::kSerializer, "Serializer (neighbour guards)",
              [](Runtime& rt) { return std::make_unique<SerializerDining>(rt, 5); });
  b.AddDining(Mechanism::kPathExpression, "One path per fork (atomic prologues)",
              [](Runtime& rt) { return std::make_unique<PathDining>(rt, 5); });

  // SJN allocator.
  b.AddSjn(Mechanism::kSemaphore, "Private-semaphore SJN",
           [](Runtime& rt) { return std::make_unique<SemaphoreSjnAllocator>(rt); });
  b.AddSjn(Mechanism::kMonitor, "Hoare scheduled-wait SJN",
           [](Runtime& rt) { return std::make_unique<MonitorSjnAllocator>(rt); });
  b.AddSjn(Mechanism::kSerializer, "Serializer SJN",
           [](Runtime& rt) { return std::make_unique<SerializerSjnAllocator>(rt); });

  // Conditional critical regions: the methodology applied to a mechanism the paper
  // never evaluated (DESIGN.md extension).
  b.AddBoundedBuffer(Mechanism::kConditionalRegion, "region when count < N",
                     [](Runtime& rt) { return std::make_unique<CcrBoundedBuffer>(rt, 3); },
                     3);
  b.AddOneSlot(Mechanism::kConditionalRegion, "region when has_item flips",
               [](Runtime& rt) { return std::make_unique<CcrOneSlotBuffer>(rt); });
  b.AddRw(Mechanism::kConditionalRegion, "rw-readers-priority",
          "CCR readers priority (pending counter)",
          [](Runtime& rt) { return std::make_unique<CcrRwReadersPriority>(rt); },
          RwPolicy::kReadersPriority, RwStrictness::kStrict);
  b.AddRw(Mechanism::kConditionalRegion, "rw-writers-priority",
          "CCR writers priority (pending counter)",
          [](Runtime& rt) { return std::make_unique<CcrRwWritersPriority>(rt); },
          RwPolicy::kWritersPriority, RwStrictness::kStrict);
  b.AddFcfs(Mechanism::kConditionalRegion, "CCR FCFS (tickets)",
            [](Runtime& rt) { return std::make_unique<CcrFcfsResource>(rt); });
  b.AddDisk(Mechanism::kConditionalRegion, "disk-scan", "CCR SCAN (pending list)",
            [](Runtime& rt) { return std::make_unique<CcrDiskScheduler>(rt, 0); },
            /*scan=*/true);
  b.AddAlarm(Mechanism::kConditionalRegion, "region when now >= due",
             [](Runtime& rt) { return std::make_unique<CcrAlarmClock>(rt); });
  b.AddSjn(Mechanism::kConditionalRegion, "CCR SJN (pending estimates)",
           [](Runtime& rt) { return std::make_unique<CcrSjnAllocator>(rt); });
  b.AddDining(Mechanism::kConditionalRegion, "region when neighbours not eating",
              [](Runtime& rt) { return std::make_unique<CcrDining>(rt, 5); });

  // Cigarette smokers (Patil 1971 — the semaphore expressive-power argument). The
  // naive ingredient-semaphore protocol is predicted to deadlock.
  b.AddSmokers(Mechanism::kSemaphore,
               "Patil's ingredient semaphores (predicted deadlock)",
               [](Runtime& rt) { return std::make_unique<SemaphoreSmokersNaive>(rt); },
               /*expect_violations=*/true);
  b.AddSmokers(Mechanism::kSemaphore, "Agent-decides semaphores",
               [](Runtime& rt) { return std::make_unique<SemaphoreSmokersAgentKnows>(rt); });
  b.AddSmokers(Mechanism::kMonitor, "Monitor smokers",
               [](Runtime& rt) { return std::make_unique<MonitorSmokers>(rt); });
  b.AddSmokers(Mechanism::kConditionalRegion, "region when table = holding",
               [](Runtime& rt) { return std::make_unique<CcrSmokers>(rt); });

  // CSP message passing (Section 6 future work): server-process solutions, stopped by
  // a terminator thread once the clients finish.
  {
    const BufferWorkloadParams params = b.BufferParams();
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "bounded-buffer";
    c.display = "CSP buffer process";
    c.trial = MakeCspTrial<CspBoundedBuffer>(
        [](Runtime& rt) { return std::make_unique<CspBoundedBuffer>(rt, 3); },
        [params](Runtime& rt, CspBoundedBuffer& buffer, TraceRecorder& trace) {
          return SpawnBoundedBufferWorkload(rt, buffer, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckBoundedBuffer(events, 3); });
    b.cases.push_back(std::move(c));
  }
  {
    const BufferWorkloadParams params = b.BufferParams();
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "one-slot-buffer";
    c.display = "CSP alternating server";
    c.trial = MakeCspTrial<CspOneSlotBuffer>(
        [](Runtime& rt) { return std::make_unique<CspOneSlotBuffer>(rt); },
        [params](Runtime& rt, CspOneSlotBuffer& buffer, TraceRecorder& trace) {
          return SpawnOneSlotBufferWorkload(rt, buffer, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckOneSlotBuffer(events); });
    b.cases.push_back(std::move(c));
  }
  for (const bool readers_first : {true, false}) {
    const RwWorkloadParams params = b.RwParams();
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = readers_first ? "rw-readers-priority" : "rw-writers-priority";
    c.display = readers_first ? "CSP server (read arm first)"
                              : "CSP server (write arm first + waiting guard)";
    const RwPolicy policy =
        readers_first ? RwPolicy::kReadersPriority : RwPolicy::kWritersPriority;
    const CspReadersWriters::Policy server_policy =
        readers_first ? CspReadersWriters::Policy::kReadersPriority
                      : CspReadersWriters::Policy::kWritersPriority;
    c.trial = MakeCspTrial<CspReadersWriters>(
        [server_policy](Runtime& rt) {
          return std::make_unique<CspReadersWriters>(rt, server_policy);
        },
        [params](Runtime& rt, CspReadersWriters& rw, TraceRecorder& trace) {
          return SpawnReadersWritersWorkload(rt, rw, trace, params);
        },
        [policy](const std::vector<Event>& events) {
          return CheckReadersWriters(events, policy, 8, RwStrictness::kStrict);
        });
    b.cases.push_back(std::move(c));
  }
  {
    FcfsWorkloadParams params;
    params.ops_per_thread = 3 * workload_scale;
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "fcfs-resource";
    c.display = "CSP server (channel order)";
    c.trial = MakeCspTrial<CspFcfsResource>(
        [](Runtime& rt) { return std::make_unique<CspFcfsResource>(rt); },
        [params](Runtime& rt, CspFcfsResource& resource, TraceRecorder& trace) {
          return SpawnFcfsWorkload(rt, resource, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckFcfsResource(events); });
    b.cases.push_back(std::move(c));
  }
  {
    DiskWorkloadParams params;
    params.requests_per_thread = 3 * workload_scale;
    params.tracks = 100;
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "disk-scan";
    c.display = "CSP disk server";
    c.trial = [params](std::uint64_t seed) -> TrialReport {
      DetRuntime runtime(MakeRandomSchedule(seed));
      TrialProbe probe(runtime);
      VirtualDisk disk(params.tracks, 0);
      CspDiskScheduler scheduler(runtime, 0);
      DiskWorkloadParams seeded = params;
      seeded.seed = seed;
      ThreadList threads = SpawnDiskWorkload(runtime, scheduler, disk, probe.trace, seeded);
      std::vector<RtThread*> clients;
      for (auto& thread : threads) {
        clients.push_back(thread.get());
      }
      ThreadList terminator;
      terminator.push_back(runtime.StartThread("terminator", [&scheduler, clients] {
        for (RtThread* client : clients) {
          client->Join();
        }
        scheduler.Shutdown();
      }));
      const DetRuntime::RunResult result = runtime.Run();
      return probe.Finish(result, [&disk](const std::vector<Event>& events) {
        if (disk.violations() != 0) {
          return std::string("virtual disk observed concurrent access");
        }
        return CheckScanDiskSchedule(events, 0);
      });
    };
    b.cases.push_back(std::move(c));
  }
  {
    AlarmWorkloadParams params;
    params.naps_per_sleeper = 2 * workload_scale;
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "alarm-clock";
    c.display = "CSP clock server";
    c.trial = MakeCspTrial<CspAlarmClock>(
        [](Runtime& rt) { return std::make_unique<CspAlarmClock>(rt); },
        [params](Runtime& rt, CspAlarmClock& clock, TraceRecorder& trace) {
          return SpawnAlarmClockWorkload(rt, clock, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckAlarmClock(events, 0); });
    b.cases.push_back(std::move(c));
  }
  {
    SjnWorkloadParams params;
    params.requests_per_thread = 2 * workload_scale;
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "sjn-allocator";
    c.display = "CSP allocator server";
    c.trial = MakeCspTrial<CspSjnAllocator>(
        [](Runtime& rt) { return std::make_unique<CspSjnAllocator>(rt); },
        [params](Runtime& rt, CspSjnAllocator& allocator, TraceRecorder& trace) {
          return SpawnSjnWorkload(rt, allocator, trace, params);
        },
        [](const std::vector<Event>& events) { return CheckSjnAllocator(events); });
    b.cases.push_back(std::move(c));
  }
  {
    DiningWorkloadParams params;
    params.meals_per_philosopher = 2 * workload_scale;
    ConformanceCase c;
    c.mechanism = Mechanism::kMessagePassing;
    c.problem = "dining-philosophers";
    c.display = "CSP table server";
    c.trial = MakeCspTrial<CspDining>(
        [](Runtime& rt) { return std::make_unique<CspDining>(rt, 5); },
        [params](Runtime& rt, CspDining& table, TraceRecorder& trace) {
          return SpawnDiningWorkload(rt, table, trace, params);
        },
        [](const std::vector<Event>& events) {
          return CheckDiningPhilosophers(events, 5);
        });
    b.cases.push_back(std::move(c));
  }

  return b.cases;
}

std::string RunFigure1AnomalyScenario(std::uint64_t seed) {
  DetRuntime rt(MakeRandomSchedule(seed));
  TraceRecorder trace;
  PathExprRwFigure1 rw(rt);
  PathController& controller = rw.controller();
  bool in_write = false;  // Set inside write1's body; read by the other two threads.

  auto writer1 = rt.StartThread("writer1", [&] {
    OpScope scope(trace, rt.CurrentThreadId(), "write");
    rw.Write(
        [&] {
          in_write = true;
          // Hold the write until BOTH writer2 (at openwrite) and the reader (at
          // requestread) are blocked in the controller.
          while (controller.WaitingCount() < 2) {
            rt.Yield();
          }
        },
        &scope);
  });
  auto writer2 = rt.StartThread("writer2", [&] {
    while (!in_write) {
      rt.Yield();
    }
    OpScope scope(trace, rt.CurrentThreadId(), "write");
    rw.Write([] {}, &scope);
  });
  auto reader = rt.StartThread("reader", [&] {
    while (!in_write) {
      rt.Yield();
    }
    // Wait until writer2's requestwrite holds the second path (its cycle counter is 0
    // with no requestread burst active), i.e. writer2 is blocked inside openwrite.
    while (!(controller.CounterValue("p1.S") == 0 && controller.BraceCount("p1.C0") == 0)) {
      rt.Yield();
    }
    OpScope scope(trace, rt.CurrentThreadId(), "read");
    rw.Read([] {}, &scope);
  });

  const DetRuntime::RunResult result = rt.Run();
  if (!result.completed) {
    return "runtime: " + result.report;
  }
  return CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority);
}

ConformanceReplay ReplayConformanceTrial(const ConformanceCase& conformance_case,
                                         std::uint64_t seed) {
  TrialCapture capture;
  g_trial_capture = &capture;
  struct Reset {
    ~Reset() { g_trial_capture = nullptr; }
  } reset;
  ConformanceReplay replay;
  replay.report = conformance_case.trial(seed);
  replay.events = std::move(capture.events);
  replay.postmortem = std::move(capture.postmortem);
  return replay;
}

ConformanceResult RunConformanceCase(const ConformanceCase& conformance_case, int seeds,
                                     std::uint64_t base_seed,
                                     const ParallelOptions& parallel) {
  ConformanceResult result;
  result.spec = conformance_case;
  result.outcome = SweepSchedules(seeds, conformance_case.trial, base_seed, parallel);
  return result;
}

std::vector<ConformanceResult> RunConformanceSuite(int seeds, int workload_scale,
                                                   const ParallelOptions& parallel) {
  std::vector<ConformanceResult> results;
  for (const ConformanceCase& c : BuildConformanceSuite(workload_scale)) {
    // Under checkpointing every case needs its own key namespace — the per-chunk keys
    // only carry (kind, seed range, chunk layout), identical across cases. The scope
    // also pins the workload scale: a resumed sweep at a different scale must miss.
    ParallelOptions scoped = parallel;
    if (scoped.checkpoint != nullptr) {
      scoped.checkpoint_scope += "/conformance/" + c.problem + "/" + c.display +
                                 "/scale" + std::to_string(workload_scale);
    }
    results.push_back(RunConformanceCase(c, seeds, 1, scoped));
  }
  return results;
}

}  // namespace syneval
