// Workload drivers: spawn client threads on a Runtime against a problem interface,
// recording instrumented traces. One driver per canonical problem; every driver is a
// deterministic function of its parameter struct (all randomness is seeded), so a run
// under DetRuntime is fully reproducible from (workload params, schedule seed).
//
// Usage pattern (deterministic):
//   DetRuntime rt(MakeRandomSchedule(seed));
//   TraceRecorder trace;
//   MonitorBoundedBuffer buffer(rt, 4);
//   auto threads = SpawnBoundedBufferWorkload(rt, buffer, trace, {});
//   auto result = rt.Run();
//   // threads joined implicitly; check CheckBoundedBuffer(trace.Events(), 4).
//
// Under OsRuntime, call JoinAll(threads) instead of rt.Run().

#ifndef SYNEVAL_PROBLEMS_WORKLOADS_H_
#define SYNEVAL_PROBLEMS_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "syneval/problems/interfaces.h"
#include "syneval/problems/virtual_disk.h"
#include "syneval/runtime/runtime.h"
#include "syneval/trace/recorder.h"

namespace syneval {

using ThreadList = std::vector<std::unique_ptr<RtThread>>;

// Joins every thread (needed under OsRuntime; a no-op after DetRuntime::Run()).
void JoinAll(ThreadList& threads);

// Burns `iterations` scheduling points (simulated work inside/outside critical sections;
// creates preemption opportunities under DetRuntime).
void SpinWork(Runtime& runtime, int iterations);

struct RwWorkloadParams {
  int readers = 3;
  int writers = 2;
  int ops_per_reader = 4;
  int ops_per_writer = 3;
  int read_work = 2;    // Scheduling points held inside the read section.
  int write_work = 3;   // Scheduling points held inside the write section.
  int think_work = 2;   // Scheduling points between operations.
  std::uint64_t seed = 1;
};

ThreadList SpawnReadersWritersWorkload(Runtime& runtime, ReadersWritersIface& rw,
                                       TraceRecorder& trace, const RwWorkloadParams& params);

struct BufferWorkloadParams {
  int producers = 2;
  int consumers = 2;
  int items_per_producer = 6;  // Total items must divide evenly among consumers.
  int work = 1;
  std::uint64_t seed = 1;
};

// Items are encoded producer-uniquely (producer_id * 1e6 + k) so oracles can check
// per-producer FIFO order.
ThreadList SpawnBoundedBufferWorkload(Runtime& runtime, BoundedBufferIface& buffer,
                                      TraceRecorder& trace, const BufferWorkloadParams& params);

ThreadList SpawnOneSlotBufferWorkload(Runtime& runtime, OneSlotBufferIface& buffer,
                                      TraceRecorder& trace, const BufferWorkloadParams& params);

struct FcfsWorkloadParams {
  int threads = 4;
  int ops_per_thread = 4;
  int hold_work = 2;
  int think_work = 2;
  std::uint64_t seed = 1;
};

ThreadList SpawnFcfsWorkload(Runtime& runtime, FcfsResourceIface& resource,
                             TraceRecorder& trace, const FcfsWorkloadParams& params);

struct DiskWorkloadParams {
  int requesters = 4;
  int requests_per_thread = 4;
  std::int64_t tracks = 200;
  int hold_work = 1;
  int think_work = 2;
  std::uint64_t seed = 1;
};

// Each request seeks the virtual disk inside the scheduler's critical section.
ThreadList SpawnDiskWorkload(Runtime& runtime, DiskSchedulerIface& scheduler,
                             VirtualDisk& disk, TraceRecorder& trace,
                             const DiskWorkloadParams& params);

struct AlarmWorkloadParams {
  int sleepers = 4;
  int naps_per_sleeper = 2;
  std::int64_t max_delay = 5;
  std::uint64_t seed = 1;
};

// Spawns the sleepers plus one clock thread that keeps ticking until every sleeper is
// done (the time substrate for the alarm-clock problem).
ThreadList SpawnAlarmClockWorkload(Runtime& runtime, AlarmClockIface& clock,
                                   TraceRecorder& trace, const AlarmWorkloadParams& params);

struct SjnWorkloadParams {
  int requesters = 4;
  int requests_per_thread = 3;
  std::int64_t max_estimate = 9;
  int think_work = 2;
  std::uint64_t seed = 1;
};

// Holding time is proportional to the declared estimate (the SJN premise).
ThreadList SpawnSjnWorkload(Runtime& runtime, SjnAllocatorIface& allocator,
                            TraceRecorder& trace, const SjnWorkloadParams& params);

struct SmokersWorkloadParams {
  int rounds = 9;
  int smoke_work = 1;
  std::uint64_t seed = 1;
};

// One agent thread placing a seeded-random ingredient sequence plus three smokers,
// each performing exactly the number of rounds that name its ingredient.
ThreadList SpawnSmokersWorkload(Runtime& runtime, SmokersTableIface& table,
                                TraceRecorder& trace, const SmokersWorkloadParams& params);

struct DiningWorkloadParams {
  int meals_per_philosopher = 3;
  int eat_work = 2;
  int think_work = 2;
  std::uint64_t seed = 1;
};

// One thread per seat; the seat count comes from the table.
ThreadList SpawnDiningWorkload(Runtime& runtime, DiningTableIface& table,
                               TraceRecorder& trace, const DiningWorkloadParams& params);

}  // namespace syneval

#endif  // SYNEVAL_PROBLEMS_WORKLOADS_H_
