#include "syneval/problems/virtual_disk.h"

#include <cstdlib>

namespace syneval {

void VirtualDisk::Access(std::int64_t track) {
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true)) {
    ++violations_;
  }
  total_seek_ += std::llabs(track - head_);
  head_ = track;
  ++accesses_;
  busy_.store(false);
}

}  // namespace syneval
