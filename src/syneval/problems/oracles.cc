#include "syneval/problems/oracles.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

namespace syneval {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

bool Contains(const std::vector<std::string>& names, const std::string& op) {
  return std::find(names.begin(), names.end(), op) != names.end();
}

// Executions that had arrived but were not yet admitted at global time `seq`
// (inclusive of arrivals at `seq` itself, exclusive of admissions at `seq`).
std::vector<const Execution*> WaitingAt(const std::vector<Execution>& executions,
                                        std::uint64_t seq) {
  std::vector<const Execution*> waiting;
  for (const Execution& e : executions) {
    if (e.request_seq != 0 && e.request_seq <= seq && (e.enter_seq == 0 || e.enter_seq > seq)) {
      waiting.push_back(&e);
    }
  }
  return waiting;
}

std::string Violation(const std::string& what, const Execution& a) {
  std::ostringstream os;
  os << what << ": " << DescribeExecution(a);
  return os.str();
}

std::string Violation(const std::string& what, const Execution& a, const Execution& b) {
  std::ostringstream os;
  os << what << ": " << DescribeExecution(a) << " vs " << DescribeExecution(b);
  return os.str();
}

// Sorted-by-admission view of the completed executions of one op.
std::vector<Execution> AdmittedInOrder(const std::vector<Execution>& executions,
                                       const std::string& op) {
  std::vector<Execution> admitted;
  for (const Execution& e : executions) {
    if (e.op == op && e.enter_seq != 0) {
      admitted.push_back(e);
    }
  }
  std::sort(admitted.begin(), admitted.end(),
            [](const Execution& a, const Execution& b) { return a.enter_seq < b.enter_seq; });
  return admitted;
}

}  // namespace

const char* RwPolicyName(RwPolicy policy) {
  switch (policy) {
    case RwPolicy::kReadersPriority:
      return "readers-priority";
    case RwPolicy::kWritersPriority:
      return "writers-priority";
    case RwPolicy::kFcfs:
      return "fcfs";
    case RwPolicy::kFair:
      return "fair";
  }
  return "?";
}

std::string CheckExclusion(const std::vector<Execution>& executions,
                           const std::vector<std::string>& exclusive,
                           const std::vector<std::string>& mutex_group) {
  // Sweep over admission/release points; incomplete executions remain active forever.
  struct Edge {
    std::uint64_t seq;
    bool enter;
    const Execution* exec;
  };
  std::vector<Edge> edges;
  for (const Execution& e : executions) {
    if (e.enter_seq == 0) {
      continue;
    }
    edges.push_back(Edge{e.enter_seq, true, &e});
    if (e.exit_seq != 0) {
      edges.push_back(Edge{e.exit_seq, false, &e});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.seq < b.seq; });
  std::vector<const Execution*> active;
  for (const Edge& edge : edges) {
    if (!edge.enter) {
      active.erase(std::remove(active.begin(), active.end(), edge.exec), active.end());
      continue;
    }
    const bool entering_exclusive = Contains(exclusive, edge.exec->op);
    const bool entering_mutex = Contains(mutex_group, edge.exec->op);
    for (const Execution* other : active) {
      if (entering_exclusive || Contains(exclusive, other->op)) {
        return Violation("exclusion violated (overlap with an exclusive op)", *edge.exec, *other);
      }
      if (entering_mutex && Contains(mutex_group, other->op)) {
        return Violation("mutual exclusion violated", *edge.exec, *other);
      }
    }
    active.push_back(edge.exec);
  }
  return "";
}

namespace {

// Latest release instant (exit of any read/write execution) strictly before `seq`;
// 0 when the resource had never been released by then.
std::uint64_t LastReleaseBefore(const std::vector<Execution>& executions, std::uint64_t seq) {
  std::uint64_t last = 0;
  for (const Execution& e : executions) {
    if ((e.op == "read" || e.op == "write") && e.exit_seq != 0 && e.exit_seq < seq) {
      last = std::max(last, e.exit_seq);
    }
  }
  return last;
}

}  // namespace

std::string CheckReadersWriters(const std::vector<Event>& events, RwPolicy policy,
                                int fair_bound, RwStrictness strictness) {
  const std::vector<Execution> executions = GroupExecutions(events);
  if (std::string error = CheckExclusion(executions, {"write"}, {}); !error.empty()) {
    return error;
  }
  std::vector<Execution> reads;
  std::vector<Execution> writes;
  for (const Execution& e : executions) {
    if (e.op == "read") {
      reads.push_back(e);
    } else if (e.op == "write") {
      writes.push_back(e);
    }
  }
  switch (policy) {
    case RwPolicy::kReadersPriority: {
      // A writer chosen at a release instant while it was already waiting must not have
      // been preferred over any waiting reader.
      for (const Execution& w : writes) {
        if (w.enter_seq == 0) {
          continue;
        }
        const std::uint64_t decision = LastReleaseBefore(executions, w.enter_seq);
        if (decision == 0 || w.request_seq == 0 || w.request_seq > decision) {
          continue;  // Admitted into a free resource; no priority decision was made.
        }
        if (strictness == RwStrictness::kArrivalOrder) {
          // Lenient form: only flag inverted arrival order.
          for (const Execution& r : reads) {
            if (r.request_seq != 0 && r.request_seq < w.request_seq &&
                (r.enter_seq == 0 || r.enter_seq > w.enter_seq)) {
              return Violation(
                  "readers-priority violated: writer overtook an earlier-arrived reader", w, r);
            }
          }
          continue;
        }
        for (const Execution& r : reads) {
          if (r.request_seq != 0 && r.request_seq <= decision &&
              (r.enter_seq == 0 || r.enter_seq > w.enter_seq)) {
            return Violation("readers-priority violated: writer admitted while a reader waited",
                             w, r);
          }
        }
      }
      break;
    }
    case RwPolicy::kWritersPriority: {
      for (const Execution& r : reads) {
        if (r.enter_seq == 0) {
          continue;
        }
        // Arrival-order form: a reader must never be admitted ahead of a writer that
        // arrived before the reader did.
        for (const Execution& w : writes) {
          if (w.request_seq != 0 && w.request_seq < r.request_seq &&
              (w.enter_seq == 0 || w.enter_seq > r.enter_seq)) {
            return Violation("writers-priority violated: reader overtook an earlier writer",
                             r, w);
          }
        }
        if (strictness == RwStrictness::kStrict) {
          // Release-instant form: a reader chosen at a release while a writer waited.
          const std::uint64_t decision = LastReleaseBefore(executions, r.enter_seq);
          if (decision == 0 || r.request_seq == 0 || r.request_seq > decision) {
            continue;
          }
          for (const Execution& w : writes) {
            if (w.request_seq != 0 && w.request_seq <= decision &&
                (w.enter_seq == 0 || w.enter_seq > r.enter_seq)) {
              return Violation(
                  "writers-priority violated: reader admitted while a writer waited", r, w);
            }
          }
        }
      }
      break;
    }
    case RwPolicy::kFcfs: {
      std::vector<const Execution*> all;
      for (const Execution& e : executions) {
        if (e.op == "read" || e.op == "write") {
          all.push_back(&e);
        }
      }
      std::sort(all.begin(), all.end(), [](const Execution* a, const Execution* b) {
        return a->request_seq < b->request_seq;
      });
      std::uint64_t last_enter = 0;
      for (const Execution* e : all) {
        const std::uint64_t enter = e->enter_seq == 0 ? kInf : e->enter_seq;
        if (enter < last_enter) {
          return Violation("fcfs violated: later request admitted first", *e);
        }
        last_enter = enter == kInf ? last_enter : enter;
      }
      break;
    }
    case RwPolicy::kFair: {
      for (const Execution& x : executions) {
        if (x.op != "read" && x.op != "write") {
          continue;
        }
        if (x.enter_seq == 0) {
          return Violation("fair policy violated: execution never admitted", x);
        }
        int overtakes = 0;
        for (const Execution& y : executions) {
          if ((y.op == "read" || y.op == "write") && y.request_seq > x.request_seq &&
              y.enter_seq != 0 && y.enter_seq < x.enter_seq) {
            ++overtakes;
          }
        }
        if (overtakes > fair_bound) {
          std::ostringstream os;
          os << "fair policy violated: " << DescribeExecution(x) << " overtaken " << overtakes
             << " times (bound " << fair_bound << ")";
          return os.str();
        }
      }
      break;
    }
  }
  return "";
}

namespace {

std::string CheckBufferCore(const std::vector<Event>& events, int capacity,
                            bool require_alternation) {
  const std::vector<Execution> executions = GroupExecutions(events);
  std::vector<Execution> deposits = AdmittedInOrder(executions, "deposit");
  std::vector<Execution> removes = AdmittedInOrder(executions, "remove");
  for (const Execution& e : executions) {
    if ((e.op == "deposit" || e.op == "remove") && !e.Complete()) {
      return Violation("buffer operation did not complete", e);
    }
  }
  if (deposits.size() < removes.size()) {
    std::ostringstream os;
    os << "conservation violated: " << removes.size() << " removes but only "
       << deposits.size() << " deposits";
    return os.str();
  }
  // FIFO: the k-th admitted remove yields the k-th admitted deposit's item.
  for (std::size_t k = 0; k < removes.size(); ++k) {
    if (removes[k].exit_value != deposits[k].param) {
      std::ostringstream os;
      os << "fifo violated: remove #" << k << " returned " << removes[k].exit_value
         << " but deposit #" << k << " put " << deposits[k].param << " ("
         << DescribeExecution(removes[k]) << ")";
      return os.str();
    }
  }
  // Availability: the k-th remove may be admitted only after >= k+1 deposits completed.
  for (std::size_t k = 0; k < removes.size(); ++k) {
    std::size_t completed = 0;
    for (const Execution& d : deposits) {
      if (d.exit_seq != 0 && d.exit_seq < removes[k].enter_seq) {
        ++completed;
      }
    }
    if (completed < k + 1) {
      return Violation("underflow: remove admitted before its item was deposited", removes[k]);
    }
  }
  // Capacity: a deposit may be admitted only when a slot is free.
  for (std::size_t k = 0; k < deposits.size(); ++k) {
    std::size_t freed = 0;
    for (const Execution& r : removes) {
      if (r.exit_seq != 0 && r.exit_seq < deposits[k].enter_seq) {
        ++freed;
      }
    }
    // k deposits admitted before this one; occupied slots = k - freed.
    if (k - std::min(k, freed) >= static_cast<std::size_t>(capacity)) {
      return Violation("overflow: deposit admitted into a full buffer", deposits[k]);
    }
  }
  if (require_alternation) {
    std::vector<const Execution*> all;
    for (const Execution& d : deposits) {
      all.push_back(&d);
    }
    for (const Execution& r : removes) {
      all.push_back(&r);
    }
    std::sort(all.begin(), all.end(), [](const Execution* a, const Execution* b) {
      return a->enter_seq < b->enter_seq;
    });
    for (std::size_t i = 0; i < all.size(); ++i) {
      const bool expect_deposit = i % 2 == 0;
      if ((all[i]->op == "deposit") != expect_deposit) {
        return Violation("alternation violated", *all[i]);
      }
    }
  }
  return "";
}

}  // namespace

std::string CheckBoundedBuffer(const std::vector<Event>& events, int capacity) {
  return CheckBufferCore(events, capacity, /*require_alternation=*/false);
}

std::string CheckOneSlotBuffer(const std::vector<Event>& events) {
  return CheckBufferCore(events, /*capacity=*/1, /*require_alternation=*/true);
}

std::string CheckFcfsResource(const std::vector<Event>& events) {
  const std::vector<Execution> executions = GroupExecutions(events);
  if (std::string error = CheckExclusion(executions, {}, {"acquire"}); !error.empty()) {
    return error;
  }
  std::vector<const Execution*> all;
  for (const Execution& e : executions) {
    if (e.op == "acquire") {
      all.push_back(&e);
    }
  }
  std::sort(all.begin(), all.end(), [](const Execution* a, const Execution* b) {
    return a->request_seq < b->request_seq;
  });
  const Execution* previous = nullptr;
  for (const Execution* e : all) {
    if (previous != nullptr) {
      const std::uint64_t prev_enter = previous->enter_seq == 0 ? kInf : previous->enter_seq;
      const std::uint64_t this_enter = e->enter_seq == 0 ? kInf : e->enter_seq;
      if (this_enter < prev_enter) {
        return Violation("fcfs violated: later arrival admitted first", *e, *previous);
      }
    }
    previous = e;
  }
  return "";
}

namespace {

// Shared replay for decision-instant policies (disk SCAN/FCFS, SJN): admissions are
// checked against the waiting set at the previous holder's release. Admissions into a
// free resource (empty waiting set) are unconstrained but still visible to the policy
// state via `observe` (e.g. they move the disk head).
template <typename ChooseFn, typename ObserveFn>
std::string ReplayDecisions(const std::vector<Execution>& admitted_order,
                            const std::vector<Execution>& all, ChooseFn&& choose,
                            ObserveFn&& observe) {
  std::uint64_t decision_seq = 0;  // Release instant of the previous holder.
  for (const Execution& admitted : admitted_order) {
    std::vector<const Execution*> waiting = WaitingAt(all, decision_seq);
    if (!waiting.empty()) {
      const Execution* expected = choose(waiting);
      if (expected->instance != admitted.instance) {
        std::ostringstream os;
        os << "scheduling policy violated: admitted " << DescribeExecution(admitted)
           << " but expected " << DescribeExecution(*expected);
        return os.str();
      }
    }
    observe(admitted);
    if (admitted.exit_seq == 0) {
      break;  // Incomplete tail (e.g. truncated run); nothing further to replay.
    }
    decision_seq = admitted.exit_seq;
  }
  return "";
}

}  // namespace

std::string CheckScanDiskSchedule(const std::vector<Event>& events, std::int64_t initial_head) {
  const std::vector<Execution> executions = GroupExecutions(events);
  if (std::string error = CheckExclusion(executions, {}, {"disk"}); !error.empty()) {
    return error;
  }
  std::vector<Execution> all;
  for (const Execution& e : executions) {
    if (e.op == "disk") {
      all.push_back(e);
    }
  }
  std::vector<Execution> admitted = AdmittedInOrder(executions, "disk");
  std::int64_t head = initial_head;
  bool moving_up = true;
  auto choose = [&](const std::vector<const Execution*>& waiting) -> const Execution* {
    auto pick = [&](bool up) -> const Execution* {
      const Execution* best = nullptr;
      for (const Execution* e : waiting) {
        const bool eligible = up ? e->param >= head : e->param <= head;
        if (!eligible) {
          continue;
        }
        if (best == nullptr) {
          best = e;
          continue;
        }
        const bool closer = up ? e->param < best->param : e->param > best->param;
        if (closer || (e->param == best->param && e->request_seq < best->request_seq)) {
          best = e;
        }
      }
      return best;
    };
    const Execution* best = pick(moving_up);
    if (best == nullptr) {
      // Current sweep exhausted: flip direction (the only place direction changes,
      // mirroring the solutions).
      moving_up = !moving_up;
      best = pick(moving_up);
    }
    return best;
  };
  auto observe = [&](const Execution& served) { head = served.param; };
  return ReplayDecisions(admitted, all, choose, observe);
}

std::string CheckFcfsDiskSchedule(const std::vector<Event>& events) {
  const std::vector<Execution> executions = GroupExecutions(events);
  if (std::string error = CheckExclusion(executions, {}, {"disk"}); !error.empty()) {
    return error;
  }
  std::vector<Execution> all;
  for (const Execution& e : executions) {
    if (e.op == "disk") {
      all.push_back(e);
    }
  }
  std::vector<Execution> admitted = AdmittedInOrder(executions, "disk");
  auto choose = [](const std::vector<const Execution*>& waiting) -> const Execution* {
    const Execution* best = waiting.front();
    for (const Execution* e : waiting) {
      if (e->request_seq < best->request_seq) {
        best = e;
      }
    }
    return best;
  };
  return ReplayDecisions(admitted, all, choose, [](const Execution&) {});
}

std::int64_t TotalSeekDistance(const std::vector<Event>& events, std::int64_t initial_head) {
  const std::vector<Execution> executions = GroupExecutions(events);
  std::vector<Execution> admitted = AdmittedInOrder(executions, "disk");
  std::int64_t head = initial_head;
  std::int64_t total = 0;
  for (const Execution& e : admitted) {
    total += std::llabs(e.param - head);
    head = e.param;
  }
  return total;
}

std::string CheckAlarmClock(const std::vector<Event>& events, std::int64_t slack) {
  const std::vector<Execution> executions = GroupExecutions(events);
  for (const Execution& e : executions) {
    if (e.op != "wake") {
      continue;
    }
    if (!e.Complete()) {
      return Violation("sleeper never woke up", e);
    }
    const std::int64_t due = e.enter_value;
    const std::int64_t woke_at = e.exit_value;
    if (woke_at < due) {
      std::ostringstream os;
      os << "early wake-up: due at " << due << " but woke at " << woke_at << " ("
         << DescribeExecution(e) << ")";
      return os.str();
    }
    if (woke_at > due + slack) {
      std::ostringstream os;
      os << "overslept: due at " << due << " but woke at " << woke_at << " (slack " << slack
         << ", " << DescribeExecution(e) << ")";
      return os.str();
    }
  }
  return "";
}

std::string CheckSmokers(const std::vector<Event>& events) {
  const std::vector<Execution> executions = GroupExecutions(events);
  std::vector<Execution> places = AdmittedInOrder(executions, "place");
  std::vector<Execution> smokes = AdmittedInOrder(executions, "smoke");
  for (const Execution& e : executions) {
    if ((e.op == "place" || e.op == "smoke") && !e.Complete()) {
      return Violation("smokers operation did not complete", e);
    }
  }
  if (places.size() != smokes.size()) {
    std::ostringstream os;
    os << "unbalanced: " << places.size() << " placements vs " << smokes.size()
       << " smokes";
    return os.str();
  }
  // Matching: the k-th smoke must be by the holder of the k-th missing ingredient.
  for (std::size_t k = 0; k < smokes.size(); ++k) {
    if (smokes[k].param != places[k].param) {
      std::ostringstream os;
      os << "wrong smoker: placement #" << k << " missed ingredient " << places[k].param
         << " but smoker holding " << smokes[k].param << " smoked ("
         << DescribeExecution(smokes[k]) << ")";
      return os.str();
    }
  }
  // Alternation of admissions: place, smoke, place, smoke, ...
  std::vector<const Execution*> all;
  for (const Execution& p : places) {
    all.push_back(&p);
  }
  for (const Execution& sm : smokes) {
    all.push_back(&sm);
  }
  std::sort(all.begin(), all.end(), [](const Execution* a, const Execution* b) {
    return a->enter_seq < b->enter_seq;
  });
  for (std::size_t i = 0; i < all.size(); ++i) {
    const bool expect_place = i % 2 == 0;
    if ((all[i]->op == "place") != expect_place) {
      return Violation("place/smoke alternation violated", *all[i]);
    }
  }
  return "";
}

std::string CheckDiningPhilosophers(const std::vector<Event>& events, int seats) {
  const std::vector<Execution> executions = GroupExecutions(events);
  std::vector<const Execution*> eats;
  for (const Execution& e : executions) {
    if (e.op == "eat") {
      if (!e.Complete()) {
        return Violation("eat execution did not complete", e);
      }
      if (e.param < 0 || e.param >= seats) {
        return Violation("eat with an out-of-range seat", e);
      }
      eats.push_back(&e);
    }
  }
  for (std::size_t i = 0; i < eats.size(); ++i) {
    for (std::size_t j = i + 1; j < eats.size(); ++j) {
      const std::int64_t a = eats[i]->param;
      const std::int64_t b = eats[j]->param;
      const bool neighbours =
          a != b && ((a + 1) % seats == b || (b + 1) % seats == a);
      if (neighbours && eats[i]->Overlaps(*eats[j])) {
        return Violation("neighbouring philosophers ate simultaneously", *eats[i],
                         *eats[j]);
      }
      if (a == b && eats[i]->Overlaps(*eats[j])) {
        return Violation("one seat produced overlapping eats", *eats[i], *eats[j]);
      }
    }
  }
  return "";
}

std::string CheckSjnAllocator(const std::vector<Event>& events) {
  const std::vector<Execution> executions = GroupExecutions(events);
  if (std::string error = CheckExclusion(executions, {}, {"alloc"}); !error.empty()) {
    return error;
  }
  std::vector<Execution> all;
  for (const Execution& e : executions) {
    if (e.op == "alloc") {
      all.push_back(e);
    }
  }
  std::vector<Execution> admitted = AdmittedInOrder(executions, "alloc");
  auto choose = [](const std::vector<const Execution*>& waiting) -> const Execution* {
    const Execution* best = waiting.front();
    for (const Execution* e : waiting) {
      if (e->param < best->param ||
          (e->param == best->param && e->request_seq < best->request_seq)) {
        best = e;
      }
    }
    return best;
  };
  return ReplayDecisions(admitted, all, choose, [](const Execution&) {});
}

}  // namespace syneval
