// Trace oracles: constraint-conformance checkers for the canonical problems.
//
// Each oracle takes a recorded trace and returns an empty string on success or a
// diagnostic describing the first violated constraint. Oracles are how this repository
// turns the paper's hand analysis into machine checks: e.g. the Figure 1 claim ("it does
// not produce the same behavior as the readers_priority example presented by Courtois,
// Heymans, and Parnas") is CheckReadersWriters(trace, kReadersPriority) failing on a
// trace produced by the Figure 1 path-expression solution.
//
// Soundness relies on the instrumentation contract (trace/recorder.h): arrival, admission
// and release events are recorded under the mechanism's internal exclusion, so the trace
// order of those events equals the mechanism's decision order.

#ifndef SYNEVAL_PROBLEMS_ORACLES_H_
#define SYNEVAL_PROBLEMS_ORACLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "syneval/trace/event.h"
#include "syneval/trace/query.h"

namespace syneval {

// Readers/writers priority policies (the problem variants of Sections 4-5).
enum class RwPolicy {
  kReadersPriority,  // Courtois-Heymans-Parnas problem 1: no reader waits unless a
                     // writer has already been admitted.
  kWritersPriority,  // CHP problem 2 flavour: no writer waits while readers are admitted
                     // after it.
  kFcfs,             // Admissions in arrival order regardless of type.
  kFair,             // Bounded overtaking (no starvation of either class).
};

const char* RwPolicyName(RwPolicy policy);

// Generic exclusion check: no execution of an op in `exclusive` may overlap any other
// execution at all (e.g. writers), and executions of ops in `mutex_group` may not
// overlap each other. Pass empty vectors to skip a part.
std::string CheckExclusion(const std::vector<Execution>& executions,
                           const std::vector<std::string>& exclusive,
                           const std::vector<std::string>& mutex_group);

// How demanding the priority-policy check is. Priority policies are defined over
// requests the mechanism has *seen*; kStrict checks admissions decided at release
// instants (exact for mechanisms whose admission decision happens at release — monitors,
// serializers, path controllers), while kArrivalOrder only flags inverted arrival order
// (appropriate for the semaphore baseline, whose multi-step entry protocols make
// "waiting" fuzzy — e.g. the known CHP weak-semaphore admission windows).
enum class RwStrictness {
  kStrict,
  kArrivalOrder,
};

// Readers/writers: writer exclusion plus the selected priority policy over ops named
// "read"/"write". `fair_bound` is the overtaking bound used by kFair.
//
// kReadersPriority (strict): at every release instant, if the admitted process is a
// writer that was already waiting, no reader may have been waiting (CHP problem 1:
// "no reader shall be kept waiting unless a writer has already obtained permission").
// This is precisely the property the paper's footnote 3 shows the Figure 1 path solution
// violating.
//
// kWritersPriority: no reader may be admitted ahead of a writer that arrived before the
// reader arrived; strict adds the release-instant check symmetric to the above.
std::string CheckReadersWriters(const std::vector<Event>& events, RwPolicy policy,
                                int fair_bound = 8,
                                RwStrictness strictness = RwStrictness::kStrict);

// Bounded buffer over ops "deposit" (param = item) and "remove" (exit value = item):
// conservation, capacity, item availability, and FIFO order.
std::string CheckBoundedBuffer(const std::vector<Event>& events, int capacity);

// One-slot buffer: bounded-buffer checks with capacity 1 plus strict alternation
// deposit/remove/deposit/... of admissions.
std::string CheckOneSlotBuffer(const std::vector<Event>& events);

// FCFS resource over op "acquire": mutual exclusion + admissions in arrival order.
std::string CheckFcfsResource(const std::vector<Event>& events);

// Disk-head scheduler over op "disk" (param = track). Verifies mutual exclusion and
// that every admission matches the SCAN (elevator) policy given the set of requests
// that were waiting at the previous release: moving up, the waiting request with the
// smallest track >= head is served (ties by arrival); when none exists the direction
// flips. `initial_head` is the head position before the first admission.
std::string CheckScanDiskSchedule(const std::vector<Event>& events, std::int64_t initial_head);

// Disk scheduler with FCFS admission (the baseline policy benches compare against).
std::string CheckFcfsDiskSchedule(const std::vector<Event>& events);

// Total head movement of the admitted sequence (the benchmark metric for E9).
std::int64_t TotalSeekDistance(const std::vector<Event>& events, std::int64_t initial_head);

// Alarm clock over op "wake" (enter value = absolute due time, exit value = logical
// time at wake-up): nobody wakes early, nobody oversleeps by more than `slack` ticks,
// and every sleeper woke up.
std::string CheckAlarmClock(const std::vector<Event>& events, std::int64_t slack = 0);

// Shortest-job-next allocator over op "alloc" (param = service estimate): mutual
// exclusion + every admission has the minimum estimate among requests that were waiting
// at the previous release (ties by arrival).
std::string CheckSjnAllocator(const std::vector<Event>& events);

// Cigarette smokers over ops "place" (param = missing ingredient) and "smoke"
// (param = held ingredient): admissions strictly alternate place/smoke, and the k-th
// smoke is by the smoker holding the k-th placement's missing ingredient.
std::string CheckSmokers(const std::vector<Event>& events);

// Dining philosophers over op "eat" (param = seat index, 0..seats-1): no two
// neighbouring seats may hold overlapping eat executions, and every eat completes.
// (Deadlock manifests separately as a DetRuntime run failure.)
std::string CheckDiningPhilosophers(const std::vector<Event>& events, int seats);

}  // namespace syneval

#endif  // SYNEVAL_PROBLEMS_ORACLES_H_
