#include "syneval/problems/workloads.h"

#include <atomic>
#include <random>
#include <string>

namespace syneval {

namespace {

// Encodes producer-unique, per-producer-increasing buffer items.
std::int64_t EncodeItem(int producer, int k) {
  return static_cast<std::int64_t>(producer + 1) * 1'000'000 + k;
}

std::string Name(const char* role, int index) { return std::string(role) + std::to_string(index); }

}  // namespace

void JoinAll(ThreadList& threads) {
  for (auto& thread : threads) {
    thread->Join();
  }
}

void SpinWork(Runtime& runtime, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    runtime.Yield();
  }
}

ThreadList SpawnReadersWritersWorkload(Runtime& runtime, ReadersWritersIface& rw,
                                       TraceRecorder& trace, const RwWorkloadParams& params) {
  ThreadList threads;
  for (int r = 0; r < params.readers; ++r) {
    threads.push_back(runtime.StartThread(Name("reader", r), [&runtime, &rw, &trace, params] {
      for (int i = 0; i < params.ops_per_reader; ++i) {
        {
          OpScope scope(trace, runtime.CurrentThreadId(), "read");
          rw.Read([&] { SpinWork(runtime, params.read_work); }, &scope);
        }
        SpinWork(runtime, params.think_work);
      }
    }));
  }
  for (int w = 0; w < params.writers; ++w) {
    threads.push_back(runtime.StartThread(Name("writer", w), [&runtime, &rw, &trace, params] {
      for (int i = 0; i < params.ops_per_writer; ++i) {
        {
          OpScope scope(trace, runtime.CurrentThreadId(), "write");
          rw.Write([&] { SpinWork(runtime, params.write_work); }, &scope);
        }
        SpinWork(runtime, params.think_work);
      }
    }));
  }
  return threads;
}

ThreadList SpawnBoundedBufferWorkload(Runtime& runtime, BoundedBufferIface& buffer,
                                      TraceRecorder& trace,
                                      const BufferWorkloadParams& params) {
  ThreadList threads;
  for (int p = 0; p < params.producers; ++p) {
    threads.push_back(
        runtime.StartThread(Name("producer", p), [&runtime, &buffer, &trace, params, p] {
          for (int k = 0; k < params.items_per_producer; ++k) {
            const std::int64_t item = EncodeItem(p, k);
            OpScope scope(trace, runtime.CurrentThreadId(), "deposit", item);
            buffer.Deposit(item, &scope);
            SpinWork(runtime, params.work);
          }
        }));
  }
  const int total = params.producers * params.items_per_producer;
  const int per_consumer = total / params.consumers;
  const int remainder = total % params.consumers;
  for (int c = 0; c < params.consumers; ++c) {
    const int count = per_consumer + (c < remainder ? 1 : 0);
    threads.push_back(
        runtime.StartThread(Name("consumer", c), [&runtime, &buffer, &trace, params, count] {
          for (int k = 0; k < count; ++k) {
            OpScope scope(trace, runtime.CurrentThreadId(), "remove");
            buffer.Remove(&scope);
            SpinWork(runtime, params.work);
          }
        }));
  }
  return threads;
}

ThreadList SpawnOneSlotBufferWorkload(Runtime& runtime, OneSlotBufferIface& buffer,
                                      TraceRecorder& trace,
                                      const BufferWorkloadParams& params) {
  ThreadList threads;
  for (int p = 0; p < params.producers; ++p) {
    threads.push_back(
        runtime.StartThread(Name("producer", p), [&runtime, &buffer, &trace, params, p] {
          for (int k = 0; k < params.items_per_producer; ++k) {
            const std::int64_t item = EncodeItem(p, k);
            OpScope scope(trace, runtime.CurrentThreadId(), "deposit", item);
            buffer.Deposit(item, &scope);
            SpinWork(runtime, params.work);
          }
        }));
  }
  const int total = params.producers * params.items_per_producer;
  const int per_consumer = total / params.consumers;
  const int remainder = total % params.consumers;
  for (int c = 0; c < params.consumers; ++c) {
    const int count = per_consumer + (c < remainder ? 1 : 0);
    threads.push_back(
        runtime.StartThread(Name("consumer", c), [&runtime, &buffer, &trace, params, count] {
          for (int k = 0; k < count; ++k) {
            OpScope scope(trace, runtime.CurrentThreadId(), "remove");
            buffer.Remove(&scope);
            SpinWork(runtime, params.work);
          }
        }));
  }
  return threads;
}

ThreadList SpawnFcfsWorkload(Runtime& runtime, FcfsResourceIface& resource,
                             TraceRecorder& trace, const FcfsWorkloadParams& params) {
  ThreadList threads;
  for (int t = 0; t < params.threads; ++t) {
    threads.push_back(
        runtime.StartThread(Name("client", t), [&runtime, &resource, &trace, params] {
          for (int i = 0; i < params.ops_per_thread; ++i) {
            {
              OpScope scope(trace, runtime.CurrentThreadId(), "acquire");
              resource.Access([&] { SpinWork(runtime, params.hold_work); }, &scope);
            }
            SpinWork(runtime, params.think_work);
          }
        }));
  }
  return threads;
}

ThreadList SpawnDiskWorkload(Runtime& runtime, DiskSchedulerIface& scheduler,
                             VirtualDisk& disk, TraceRecorder& trace,
                             const DiskWorkloadParams& params) {
  ThreadList threads;
  for (int t = 0; t < params.requesters; ++t) {
    threads.push_back(runtime.StartThread(
        Name("requester", t), [&runtime, &scheduler, &disk, &trace, params, t] {
          std::mt19937_64 rng(params.seed * 7919 + static_cast<std::uint64_t>(t));
          std::uniform_int_distribution<std::int64_t> track_dist(0, params.tracks - 1);
          for (int i = 0; i < params.requests_per_thread; ++i) {
            const std::int64_t track = track_dist(rng);
            {
              OpScope scope(trace, runtime.CurrentThreadId(), "disk", track);
              scheduler.Access(
                  track,
                  [&] {
                    disk.Access(track);
                    SpinWork(runtime, params.hold_work);
                  },
                  &scope);
            }
            SpinWork(runtime, params.think_work);
          }
        }));
  }
  return threads;
}

ThreadList SpawnAlarmClockWorkload(Runtime& runtime, AlarmClockIface& clock,
                                   TraceRecorder& trace, const AlarmWorkloadParams& params) {
  ThreadList threads;
  auto done = std::make_shared<std::atomic<int>>(0);
  for (int s = 0; s < params.sleepers; ++s) {
    threads.push_back(
        runtime.StartThread(Name("sleeper", s), [&runtime, &clock, &trace, params, s, done] {
          std::mt19937_64 rng(params.seed * 104729 + static_cast<std::uint64_t>(s));
          std::uniform_int_distribution<std::int64_t> delay_dist(1, params.max_delay);
          for (int n = 0; n < params.naps_per_sleeper; ++n) {
            const std::int64_t delay = delay_dist(rng);
            OpScope scope(trace, runtime.CurrentThreadId(), "wake", delay);
            clock.WakeMe(delay, &scope);
            SpinWork(runtime, 1);
          }
          done->fetch_add(1);
        }));
  }
  threads.push_back(runtime.StartThread("clock", [&runtime, &clock, params, done] {
    while (done->load() < params.sleepers) {
      clock.Tick();
      SpinWork(runtime, 1);
    }
  }));
  return threads;
}

ThreadList SpawnSmokersWorkload(Runtime& runtime, SmokersTableIface& table,
                                TraceRecorder& trace, const SmokersWorkloadParams& params) {
  // Precompute the placement sequence so every smoker knows its round count.
  auto sequence = std::make_shared<std::vector<int>>();
  std::mt19937_64 rng(params.seed * 48611 + 5);
  std::uniform_int_distribution<int> ingredient(0, 2);
  for (int r = 0; r < params.rounds; ++r) {
    sequence->push_back(ingredient(rng));
  }
  ThreadList threads;
  threads.push_back(runtime.StartThread("agent", [&runtime, &table, &trace, sequence] {
    for (const int missing : *sequence) {
      OpScope scope(trace, runtime.CurrentThreadId(), "place", missing);
      table.Place(missing, &scope);
    }
  }));
  for (int holding = 0; holding < 3; ++holding) {
    int count = 0;
    for (const int missing : *sequence) {
      if (missing == holding) {
        ++count;
      }
    }
    threads.push_back(runtime.StartThread(
        Name("smoker", holding), [&runtime, &table, &trace, params, holding, count] {
          for (int r = 0; r < count; ++r) {
            OpScope scope(trace, runtime.CurrentThreadId(), "smoke", holding);
            table.Smoke(holding, [&] { SpinWork(runtime, params.smoke_work); }, &scope);
          }
        }));
  }
  return threads;
}

ThreadList SpawnDiningWorkload(Runtime& runtime, DiningTableIface& table,
                               TraceRecorder& trace, const DiningWorkloadParams& params) {
  ThreadList threads;
  for (int seat = 0; seat < table.seats(); ++seat) {
    threads.push_back(
        runtime.StartThread(Name("philosopher", seat), [&runtime, &table, &trace, params,
                                                        seat] {
          for (int meal = 0; meal < params.meals_per_philosopher; ++meal) {
            {
              OpScope scope(trace, runtime.CurrentThreadId(), "eat", seat);
              table.Eat(seat, [&] { SpinWork(runtime, params.eat_work); }, &scope);
            }
            SpinWork(runtime, params.think_work);
          }
        }));
  }
  return threads;
}

ThreadList SpawnSjnWorkload(Runtime& runtime, SjnAllocatorIface& allocator,
                            TraceRecorder& trace, const SjnWorkloadParams& params) {
  ThreadList threads;
  for (int t = 0; t < params.requesters; ++t) {
    threads.push_back(
        runtime.StartThread(Name("job", t), [&runtime, &allocator, &trace, params, t] {
          std::mt19937_64 rng(params.seed * 15485863 + static_cast<std::uint64_t>(t));
          std::uniform_int_distribution<std::int64_t> estimate_dist(1, params.max_estimate);
          for (int i = 0; i < params.requests_per_thread; ++i) {
            const std::int64_t estimate = estimate_dist(rng);
            {
              OpScope scope(trace, runtime.CurrentThreadId(), "alloc", estimate);
              allocator.Use(estimate, [&] { SpinWork(runtime, static_cast<int>(estimate)); },
                            &scope);
            }
            SpinWork(runtime, params.think_work);
          }
        }));
  }
  return threads;
}

}  // namespace syneval
