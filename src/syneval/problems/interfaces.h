// Per-problem solution interfaces.
//
// These are the canonical synchronization problems the paper's methodology selects
// (footnote 2) plus the extensions analysed in Section 5, each reduced to an abstract
// interface so that every mechanism's solution is interchangeable under one workload
// driver and one oracle:
//
//   bounded buffer        — local state information
//   one-slot buffer       — history information (the CH74 example)
//   FCFS resource         — request time information
//   readers/writers       — request type + synchronization state (priority policies)
//   disk-head scheduler   — request parameters (track numbers)
//   alarm clock           — request parameters (wake times) + a time substrate
//   SJN allocator         — request parameters (service estimates)
//
// Resource-access operations take the critical-section body as a callback. This is the
// "protected resource" structure of Section 2 of the paper: the unsynchronized resource
// action is wrapped by the synchronizer, and it is the shape serializers require
// (JoinCrowd runs the body outside possession) while monitors and semaphores implement
// it trivially as enter/body/exit.
//
// Instrumentation: every blocking entry point takes an `OpScope*` (nullable) and records
// Arrived/Entered/Exited per the contract in trace/recorder.h — at points serialized by
// the mechanism's internal exclusion, so the recorded order equals the decision order.

#ifndef SYNEVAL_PROBLEMS_INTERFACES_H_
#define SYNEVAL_PROBLEMS_INTERFACES_H_

#include <cstdint>
#include <functional>

#include "syneval/trace/recorder.h"

namespace syneval {

// The critical-section body of a resource access.
using AccessBody = std::function<void()>;

// Multi-producer multi-consumer FIFO buffer of fixed capacity.
class BoundedBufferIface {
 public:
  virtual ~BoundedBufferIface() = default;

  // Blocks while the buffer is full.
  virtual void Deposit(std::int64_t item, OpScope* scope) = 0;

  // Blocks while the buffer is empty; returns the oldest item.
  virtual std::int64_t Remove(OpScope* scope) = 0;

  virtual int capacity() const = 0;
};

// One-slot buffer: deposits and removals must strictly alternate, starting with a
// deposit (the Campbell–Habermann "path deposit; remove end" example — a pure history
// constraint: whether a deposit has happened determines what may happen next).
class OneSlotBufferIface {
 public:
  virtual ~OneSlotBufferIface() = default;

  virtual void Deposit(std::int64_t item, OpScope* scope) = 0;
  virtual std::int64_t Remove(OpScope* scope) = 0;
};

// Readers/writers database. Which priority policy a solution implements is part of its
// identity (see solutions/); the workload and oracle are shared.
class ReadersWritersIface {
 public:
  virtual ~ReadersWritersIface() = default;

  virtual void Read(const AccessBody& body, OpScope* scope) = 0;
  virtual void Write(const AccessBody& body, OpScope* scope) = 0;
};

// Mutual-exclusion resource whose admissions must be first-come-first-served in request
// arrival order, regardless of requester identity or type.
class FcfsResourceIface {
 public:
  virtual ~FcfsResourceIface() = default;

  virtual void Access(const AccessBody& body, OpScope* scope) = 0;
};

// Disk-head scheduler (Hoare 1974): grants exclusive disk access in elevator (SCAN)
// order over the requested track numbers. `track` is the request parameter the policy
// orders by; the body performs the actual transfer (e.g. VirtualDisk::Access).
class DiskSchedulerIface {
 public:
  virtual ~DiskSchedulerIface() = default;

  virtual void Access(std::int64_t track, const AccessBody& body, OpScope* scope) = 0;
};

// Alarm clock (Hoare 1974): processes sleep until a logical time; a clock process
// drives ticks. WakeMe(n) returns once at least n ticks have elapsed since the call.
class AlarmClockIface {
 public:
  virtual ~AlarmClockIface() = default;

  virtual void Tick() = 0;
  virtual void WakeMe(std::int64_t ticks, OpScope* scope) = 0;
  virtual std::int64_t Now() const = 0;
};

// Single resource allocated shortest-job-next: among the waiting requests, the one with
// the smallest service estimate is admitted first (Hoare 1974's scheduled-wait example).
class SjnAllocatorIface {
 public:
  virtual ~SjnAllocatorIface() = default;

  virtual void Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) = 0;
};

// Cigarette smokers (Patil 1971): an agent repeatedly places two of three ingredients
// (encoded by the MISSING one: 0 = tobacco, 1 = paper, 2 = matches); the smoker holding
// the missing ingredient must take them and smoke before the agent continues. Patil
// used it to argue semaphores alone cannot express the conditional "which pair is on
// the table?" — squarely the paper's expressive-power theme.
class SmokersTableIface {
 public:
  virtual ~SmokersTableIface() = default;

  // The agent places the two ingredients complementary to `missing`; blocks until the
  // previous placement was consumed.
  virtual void Place(int missing, OpScope* scope) = 0;

  // The smoker holding ingredient `holding` waits for its complementary pair, takes
  // it, and smokes (`body`).
  virtual void Smoke(int holding, const AccessBody& body, OpScope* scope) = 0;
};

// Dining philosophers (Dijkstra, "Cooperating Sequential Processes" — the paper's
// reference [9]): `seats` philosophers around a table; Eat(i, body) runs `body` while
// holding both of philosopher i's forks — neighbours must never eat simultaneously.
class DiningTableIface {
 public:
  virtual ~DiningTableIface() = default;

  virtual void Eat(int philosopher, const AccessBody& body, OpScope* scope) = 0;
  virtual int seats() const = 0;
};

}  // namespace syneval

#endif  // SYNEVAL_PROBLEMS_INTERFACES_H_
