// A tiny moving-head disk model — the hardware substitute for the disk-scheduler
// experiments (DESIGN.md substitution table). It accounts seek distance with a linear
// cost model and asserts that accesses are exclusive, giving a substrate-level
// double-check of the oracle's exclusion verdict.

#ifndef SYNEVAL_PROBLEMS_VIRTUAL_DISK_H_
#define SYNEVAL_PROBLEMS_VIRTUAL_DISK_H_

#include <atomic>
#include <cstdint>

namespace syneval {

class VirtualDisk {
 public:
  explicit VirtualDisk(std::int64_t tracks, std::int64_t initial_head = 0)
      : tracks_(tracks), head_(initial_head) {}

  // Services one request: seeks to `track` and accounts the head movement.
  // Must only be called while holding exclusive disk access (the scheduler's critical
  // section); concurrent calls trip an assertion-like failure counter.
  void Access(std::int64_t track);

  std::int64_t head() const { return head_; }
  std::int64_t total_seek() const { return total_seek_; }
  std::int64_t accesses() const { return accesses_; }
  std::int64_t tracks() const { return tracks_; }

  // Number of concurrent-access violations observed (0 in any correct run).
  std::int64_t violations() const { return violations_; }

 private:
  std::int64_t tracks_;
  std::int64_t head_;
  std::int64_t total_seek_ = 0;
  std::int64_t accesses_ = 0;
  std::atomic<bool> busy_{false};
  std::int64_t violations_ = 0;
};

}  // namespace syneval

#endif  // SYNEVAL_PROBLEMS_VIRTUAL_DISK_H_
