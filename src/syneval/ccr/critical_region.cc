#include "syneval/ccr/critical_region.h"

#include <cassert>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/instrument.h"

namespace syneval {

struct CriticalRegion::Waiter {
  bool granted = false;
  std::uint32_t thread = 0;
  Condition condition;              // Null for bare-exclusion (entry) waiters.
  std::function<void()> on_admit;   // Runs under mu_ in the granting thread.
  std::uint64_t wait_start = 0;     // NowNanos when the wait began (telemetry).
};

CriticalRegion::CriticalRegion(Runtime& runtime)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "critical_region")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()) {
  if (det_ != nullptr) {
    det_name_ = det_->RegisterResource(this, ResourceKind::kLock, "CriticalRegion");
    // The when-waiter list behaves like a condition queue: waiters park there until a
    // releasing body makes their condition true.
    det_->RegisterResource(&waiting_, ResourceKind::kQueue, det_name_ + ".when");
    // Rename the inner primitives after the region so wait-for edges and postmortem
    // cycles keep the wrapper's identity instead of "mutex#N".
    det_->RegisterResource(mu_.get(), ResourceKind::kLock, det_name_ + ".mu");
    det_->RegisterResource(cv_.get(), ResourceKind::kCondition, det_name_ + ".cv");
  }
  if (FlightRecorder* flight = runtime.flight_recorder()) {
    const std::string name = flight->RegisterName(this, "CriticalRegion");
    flight->RegisterName(&waiting_, name + ".when");
    flight->RegisterName(mu_.get(), name + ".mu");
    flight->RegisterName(cv_.get(), name + ".cv");
  }
}

void CriticalRegion::Enter(const Body& body) { Enter(body, Hooks{}); }

// Bodies run under mu_: the region lock is the meta-lock, so shared state touched by
// bodies, conditions, and arrival hooks is serialized by one lock. `busy_` implements
// the direct handoff to a satisfied waiter (no third party can slip in between a
// release decision and the admitted process's resumption).
void CriticalRegion::Enter(const Body& body, const Hooks& hooks) {
  RtLock lock(*mu_);
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (hooks.on_arrive) {
    hooks.on_arrive();
  }
  if (!busy_) {
    busy_ = true;
    if (det_ != nullptr) {
      det_->OnAcquire(tid, this);
    }
    if (tel_ != nullptr) {
      tel_->wait.Record(0);  // Uncontended entry.
      tel_->admissions.Add(1);
      region_since_ = runtime_.NowNanos();
    }
    if (hooks.on_admit) {
      hooks.on_admit();
    }
  } else {
    Waiter self;
    self.thread = tid;
    self.on_admit = hooks.on_admit;
    self.wait_start = TelemetryNow(tel_, runtime_);
    entry_.push_back(&self);
    if (tel_ != nullptr) {
      tel_->queue_depth.Set(static_cast<std::int64_t>(entry_.size() + waiting_.size()));
    }
    if (det_ != nullptr) {
      det_->OnBlock(tid, this);
    }
    if (recovery_ != nullptr) {
      RecoveringWait(
          *cv_, *mu_, [&self] { return self.granted; }, recovery_policy_, recovery_,
          [this] {
            if (tel_ != nullptr) {
              tel_->wakeups.Add(1);
            }
          });
    } else {
      while (!self.granted) {
        cv_->Wait(*mu_);
        if (tel_ != nullptr) {
          tel_->wakeups.Add(1);
        }
      }
    }
    if (det_ != nullptr) {
      det_->OnWake(tid, this);
    }
  }
  body();
  if (hooks.on_release) {
    hooks.on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(tid, this);
  }
  if (tel_ != nullptr) {
    tel_->hold.Record(TelemetryElapsed(region_since_, runtime_.NowNanos()));
  }
  ReleaseRegionLocked();
}

void CriticalRegion::When(const Condition& condition, const Body& body) {
  When(condition, body, Hooks{});
}

void CriticalRegion::When(const Condition& condition, const Body& body, const Hooks& hooks) {
  RtLock lock(*mu_);
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (hooks.on_arrive) {
    hooks.on_arrive();
  }
  // Conditions are pure functions of region-protected state, so while the region is
  // free the condition's value cannot change: test it immediately.
  if (!busy_ && condition()) {
    busy_ = true;
    if (det_ != nullptr) {
      det_->OnAcquire(tid, this);
    }
    if (tel_ != nullptr) {
      tel_->wait.Record(0);  // Condition already true and the region free.
      tel_->admissions.Add(1);
      region_since_ = runtime_.NowNanos();
    }
    if (hooks.on_admit) {
      hooks.on_admit();
    }
  } else {
    Waiter self;
    self.thread = tid;
    self.condition = condition;
    self.on_admit = hooks.on_admit;
    self.wait_start = TelemetryNow(tel_, runtime_);
    waiting_.push_back(&self);
    if (tel_ != nullptr) {
      tel_->queue_depth.Set(static_cast<std::int64_t>(entry_.size() + waiting_.size()));
    }
    if (det_ != nullptr) {
      det_->OnBlock(tid, &waiting_);
    }
    if (recovery_ != nullptr) {
      RecoveringWait(
          *cv_, *mu_, [&self] { return self.granted; }, recovery_policy_, recovery_,
          [this] {
            if (tel_ != nullptr) {
              tel_->wakeups.Add(1);
            }
          });
    } else {
      while (!self.granted) {
        cv_->Wait(*mu_);
        if (tel_ != nullptr) {
          tel_->wakeups.Add(1);
        }
      }
    }
    if (det_ != nullptr) {
      det_->OnWake(tid, &waiting_);
    }
    // Granted by a releaser that verified the condition and transferred the region
    // (busy_ stays true); no re-test needed.
  }
  body();
  if (hooks.on_release) {
    hooks.on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(tid, this);
  }
  if (tel_ != nullptr) {
    tel_->hold.Record(TelemetryElapsed(region_since_, runtime_.NowNanos()));
  }
  ReleaseRegionLocked();
}

int CriticalRegion::Waiting() const {
  RtLock lock(*mu_);
  return static_cast<int>(waiting_.size());
}

void CriticalRegion::EnableRecovery(RecoveryStats* stats, RecoveryPolicy policy) {
  RtLock lock(*mu_);
  recovery_ = stats;
  recovery_policy_ = policy;
}

void CriticalRegion::ReleaseRegionLocked() {
  assert(busy_ && "region released while free");
  FlightRecorder* flight = runtime_.flight_recorder();
  // Re-test every waiting condition in arrival order; first satisfied is admitted.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    Waiter* waiter = *it;
    const bool satisfied = waiter->condition();
    if (flight != nullptr) {
      // arg = 1 when the re-test admitted this waiter; a long run of arg-0 re-tests
      // against the same waiter is the starvation signature the postmortem looks for.
      flight->Record(waiter->thread, FlightEventType::kGuardRetest, &waiting_,
                     runtime_.NowNanos(), satisfied ? 1 : 0);
    }
    if (satisfied) {
      waiting_.erase(it);
      if (det_ != nullptr) {
        det_->OnAcquire(waiter->thread, this);
      }
      if (tel_ != nullptr) {
        const std::uint64_t now = runtime_.NowNanos();
        // The release re-test admitting a waiter is the CCR's implicit signal.
        tel_->signals.Add(1);
        tel_->wait.Record(TelemetryElapsed(waiter->wait_start, now));
        tel_->admissions.Add(1);
        region_since_ = now;
        tel_->queue_depth.Set(static_cast<std::int64_t>(entry_.size() + waiting_.size()));
      }
      if (waiter->on_admit) {
        waiter->on_admit();
      }
      waiter->granted = true;
      cv_->NotifyAll();
      return;
    }
  }
  if (!entry_.empty()) {
    Waiter* waiter = entry_.front();
    entry_.pop_front();
    if (det_ != nullptr) {
      det_->OnAcquire(waiter->thread, this);
    }
    if (tel_ != nullptr) {
      const std::uint64_t now = runtime_.NowNanos();
      tel_->wait.Record(TelemetryElapsed(waiter->wait_start, now));
      tel_->admissions.Add(1);
      region_since_ = now;
      tel_->queue_depth.Set(static_cast<std::int64_t>(entry_.size() + waiting_.size()));
    }
    if (waiter->on_admit) {
      waiter->on_admit();
    }
    waiter->granted = true;
    cv_->NotifyAll();
    return;
  }
  busy_ = false;
}

}  // namespace syneval
