#include "syneval/serializer/serializer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/instrument.h"

namespace syneval {

struct Serializer::Waiter {
  bool granted = false;
  std::uint32_t thread = 0;
  Guard guard;                 // Only set for queue waiters.
  std::int64_t priority = 0;   // PriorityQueue key.
  std::uint64_t arrival = 0;   // FIFO tie-break.
  std::uint64_t wait_start = 0;  // NowNanos when the wait began (telemetry).
};

Serializer::Serializer(Runtime& runtime)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "serializer")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()) {
  if (det_ != nullptr) {
    // Possession is exclusive, so the serializer itself registers as a lock.
    det_name_ = det_->RegisterResource(this, ResourceKind::kLock, "Serializer");
    // Rename the inner primitives after the serializer so wait-for edges and
    // postmortem cycles keep the wrapper's identity instead of "mutex#N".
    det_->RegisterResource(mu_.get(), ResourceKind::kLock, det_name_ + ".mu");
    det_->RegisterResource(cv_.get(), ResourceKind::kCondition, det_name_ + ".cv");
  }
  if (FlightRecorder* flight = runtime.flight_recorder()) {
    const std::string name = flight->RegisterName(this, "Serializer");
    flight->RegisterName(mu_.get(), name + ".mu");
    flight->RegisterName(cv_.get(), name + ".cv");
  }
}

Serializer::QueueBase::QueueBase(Serializer& serializer, std::string name)
    : serializer_(serializer), name_(std::move(name)) {
  serializer_.queues_.push_back(this);
  if (serializer.det_ != nullptr) {
    serializer.det_->RegisterResource(this, ResourceKind::kQueue,
                                      serializer.det_name_ + ".q." + name_);
  }
}

void Serializer::Queue::Insert(void* waiter) { waiters_.push_back(waiter); }

void Serializer::PriorityQueue::Insert(void* waiter) {
  auto* w = static_cast<Waiter*>(waiter);
  auto pos = std::find_if(waiters_.begin(), waiters_.end(), [&](void* raw) {
    auto* other = static_cast<Waiter*>(raw);
    return other->priority > w->priority;
  });
  waiters_.insert(pos, waiter);
}

std::int64_t Serializer::PriorityQueue::MinPriority() const {
  assert(!waiters_.empty() && "MinPriority on an empty priority queue");
  return static_cast<const Waiter*>(waiters_.front())->priority;
}

Serializer::Crowd::Crowd(Serializer& serializer, std::string name)
    : serializer_(serializer), name_(std::move(name)) {}

void Serializer::Acquire() {
  RtLock lock(*mu_);
  if (!possessed_) {
    possessed_ = true;
    possessor_ = runtime_.CurrentThreadId();
    if (det_ != nullptr) {
      det_->OnAcquire(possessor_, this);
    }
    if (tel_ != nullptr) {
      tel_->wait.Record(0);  // Uncontended possession.
      tel_->admissions.Add(1);
      possessor_since_ = runtime_.NowNanos();
    }
    return;
  }
  Waiter self;
  self.thread = runtime_.CurrentThreadId();
  self.wait_start = TelemetryNow(tel_, runtime_);
  entry_.push_back(&self);
  if (tel_ != nullptr) {
    tel_->queue_depth.Set(BlockedCountLocked());
  }
  if (det_ != nullptr) {
    det_->OnBlock(self.thread, this);
  }
  BlockLocked(&self);
  if (det_ != nullptr) {
    det_->OnWake(self.thread, this);
  }
}

void Serializer::Release() {
  if (runtime_.Aborting()) {
    return;  // Teardown unwinding: an Enqueue may already have surrendered possession.
  }
  RtLock lock(*mu_);
  AssertPossessedByCaller();
  if (det_ != nullptr) {
    det_->OnRelease(possessor_, this);
  }
  if (tel_ != nullptr) {
    tel_->hold.Record(TelemetryElapsed(possessor_since_, runtime_.NowNanos()));
  }
  ReleasePossessionLocked();
}

void Serializer::Enqueue(Queue& queue, Guard guard) {
  EnqueueImpl(queue, 0, std::move(guard));
}

void Serializer::Enqueue(PriorityQueue& queue, std::int64_t priority, Guard guard) {
  EnqueueImpl(queue, priority, std::move(guard));
}

void Serializer::EnqueueImpl(QueueBase& queue, std::int64_t priority, Guard guard) {
  RtLock lock(*mu_);
  AssertPossessedByCaller();
  Waiter self;
  self.thread = runtime_.CurrentThreadId();
  self.guard = std::move(guard);
  self.priority = priority;
  self.arrival = ++arrivals_;
  self.wait_start = TelemetryNow(tel_, runtime_);
  if (tel_ != nullptr) {
    // Waiting in a queue gives up possession; re-admission starts a new tenure.
    tel_->hold.Record(TelemetryElapsed(possessor_since_, self.wait_start));
  }
  queue.Insert(&self);
  if (tel_ != nullptr) {
    tel_->queue_depth.Set(BlockedCountLocked());
  }
  if (det_ != nullptr) {
    det_->OnRelease(self.thread, this);
    det_->OnBlock(self.thread, &queue);
  }
  ReleasePossessionLocked();
  BlockLocked(&self);
  if (det_ != nullptr) {
    det_->OnWake(self.thread, &queue);
  }
}

void Serializer::JoinCrowd(Crowd& crowd, const std::function<void()>& body) {
  JoinCrowd(crowd, body, nullptr, nullptr);
}

void Serializer::JoinCrowd(Crowd& crowd, const std::function<void()>& body,
                           const std::function<void()>& on_join,
                           const std::function<void()>& on_leave) {
  Waiter self;
  {
    RtLock lock(*mu_);
    AssertPossessedByCaller();
    ++crowd.members_;
    if (on_join) {
      on_join();
    }
    if (det_ != nullptr) {
      det_->OnRelease(possessor_, this);
    }
    if (tel_ != nullptr) {
      // The crowd body runs outside possession; the tenure ends at the join.
      tel_->hold.Record(TelemetryElapsed(possessor_since_, runtime_.NowNanos()));
    }
    ReleasePossessionLocked();
  }
  body();
  {
    RtLock lock(*mu_);
    self.thread = runtime_.CurrentThreadId();
    if (!possessed_) {
      possessed_ = true;
      possessor_ = self.thread;
      if (det_ != nullptr) {
        det_->OnAcquire(self.thread, this);
      }
      if (tel_ != nullptr) {
        tel_->wait.Record(0);  // Uncontended crowd re-entry.
        tel_->admissions.Add(1);
        possessor_since_ = runtime_.NowNanos();
      }
    } else {
      self.wait_start = TelemetryNow(tel_, runtime_);
      reentry_.push_back(&self);
      if (tel_ != nullptr) {
        tel_->queue_depth.Set(BlockedCountLocked());
      }
      if (det_ != nullptr) {
        det_->OnBlock(self.thread, this);
      }
      BlockLocked(&self);
      if (det_ != nullptr) {
        det_->OnWake(self.thread, this);
      }
    }
    --crowd.members_;
    if (on_leave) {
      on_leave();
    }
  }
}

void Serializer::ReleasePossessionLocked() {
  // 1. Crowd re-entries have absolute precedence: they are the only events that can
  //    change crowd state, so queue guards over crowds cannot make progress before them.
  if (!reentry_.empty()) {
    Waiter* waiter = reentry_.front();
    reentry_.pop_front();
    waiter->granted = true;
    possessor_ = waiter->thread;
    if (det_ != nullptr) {
      det_->OnAcquire(waiter->thread, this);
    }
    TelemetryGrantLocked(waiter);
    cv_->NotifyAll();
    return;
  }
  // 2. Automatic signalling: first satisfied queue head, in queue-creation order.
  for (QueueBase* queue : queues_) {
    if (queue->waiters_.empty()) {
      continue;
    }
    auto* head = static_cast<Waiter*>(queue->waiters_.front());
    if (head->guard && head->guard()) {
      queue->waiters_.pop_front();
      head->granted = true;
      possessor_ = head->thread;
      if (det_ != nullptr) {
        det_->OnAcquire(head->thread, this);
      }
      if (tel_ != nullptr) {
        // A guard becoming true and admitting the head is the serializer's implicit
        // signal — there is no explicit Signal() to count, so count the deliveries.
        tel_->signals.Add(1);
      }
      TelemetryGrantLocked(head);
      cv_->NotifyAll();
      return;
    }
  }
  // 3. New entrants, FIFO.
  if (!entry_.empty()) {
    Waiter* waiter = entry_.front();
    entry_.pop_front();
    waiter->granted = true;
    possessor_ = waiter->thread;
    if (det_ != nullptr) {
      det_->OnAcquire(waiter->thread, this);
    }
    TelemetryGrantLocked(waiter);
    cv_->NotifyAll();
    return;
  }
  possessed_ = false;
  possessor_ = 0;
}

void Serializer::TelemetryGrantLocked(Waiter* waiter) {
  if (tel_ == nullptr) {
    return;
  }
  const std::uint64_t now = runtime_.NowNanos();
  tel_->wait.Record(TelemetryElapsed(waiter->wait_start, now));
  tel_->admissions.Add(1);
  possessor_since_ = now;
  tel_->queue_depth.Set(BlockedCountLocked());
}

std::int64_t Serializer::BlockedCountLocked() const {
  std::size_t blocked = entry_.size() + reentry_.size();
  for (const QueueBase* queue : queues_) {
    blocked += queue->waiters_.size();
  }
  return static_cast<std::int64_t>(blocked);
}

void Serializer::BlockLocked(Waiter* waiter) {
  while (!waiter->granted) {
    cv_->Wait(*mu_);
    if (tel_ != nullptr) {
      // Possession grants broadcast the shared condvar; every resume counts so that
      // wakeups/admissions exposes the futile-wakeup amplification.
      tel_->wakeups.Add(1);
    }
  }
}

void Serializer::AssertPossessedByCaller() const {
  assert(possessed_ && "serializer operation without possession");
  assert(possessor_ == runtime_.CurrentThreadId() &&
         "serializer operation by a process not in possession");
}

}  // namespace syneval
