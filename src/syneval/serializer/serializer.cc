#include "syneval/serializer/serializer.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace syneval {

struct Serializer::Waiter {
  bool granted = false;
  std::uint32_t thread = 0;
  Guard guard;                 // Only set for queue waiters.
  std::int64_t priority = 0;   // PriorityQueue key.
  std::uint64_t arrival = 0;   // FIFO tie-break.
};

Serializer::Serializer(Runtime& runtime)
    : runtime_(runtime), mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()) {}

Serializer::QueueBase::QueueBase(Serializer& serializer, std::string name)
    : serializer_(serializer), name_(std::move(name)) {
  serializer_.queues_.push_back(this);
}

void Serializer::Queue::Insert(void* waiter) { waiters_.push_back(waiter); }

void Serializer::PriorityQueue::Insert(void* waiter) {
  auto* w = static_cast<Waiter*>(waiter);
  auto pos = std::find_if(waiters_.begin(), waiters_.end(), [&](void* raw) {
    auto* other = static_cast<Waiter*>(raw);
    return other->priority > w->priority;
  });
  waiters_.insert(pos, waiter);
}

std::int64_t Serializer::PriorityQueue::MinPriority() const {
  assert(!waiters_.empty() && "MinPriority on an empty priority queue");
  return static_cast<const Waiter*>(waiters_.front())->priority;
}

Serializer::Crowd::Crowd(Serializer& serializer, std::string name)
    : serializer_(serializer), name_(std::move(name)) {}

void Serializer::Acquire() {
  RtLock lock(*mu_);
  if (!possessed_) {
    possessed_ = true;
    possessor_ = runtime_.CurrentThreadId();
    return;
  }
  Waiter self;
  self.thread = runtime_.CurrentThreadId();
  entry_.push_back(&self);
  BlockLocked(&self);
}

void Serializer::Release() {
  RtLock lock(*mu_);
  AssertPossessedByCaller();
  ReleasePossessionLocked();
}

void Serializer::Enqueue(Queue& queue, Guard guard) {
  EnqueueImpl(queue, 0, std::move(guard));
}

void Serializer::Enqueue(PriorityQueue& queue, std::int64_t priority, Guard guard) {
  EnqueueImpl(queue, priority, std::move(guard));
}

void Serializer::EnqueueImpl(QueueBase& queue, std::int64_t priority, Guard guard) {
  RtLock lock(*mu_);
  AssertPossessedByCaller();
  Waiter self;
  self.thread = runtime_.CurrentThreadId();
  self.guard = std::move(guard);
  self.priority = priority;
  self.arrival = ++arrivals_;
  queue.Insert(&self);
  ReleasePossessionLocked();
  BlockLocked(&self);
}

void Serializer::JoinCrowd(Crowd& crowd, const std::function<void()>& body) {
  JoinCrowd(crowd, body, nullptr, nullptr);
}

void Serializer::JoinCrowd(Crowd& crowd, const std::function<void()>& body,
                           const std::function<void()>& on_join,
                           const std::function<void()>& on_leave) {
  Waiter self;
  {
    RtLock lock(*mu_);
    AssertPossessedByCaller();
    ++crowd.members_;
    if (on_join) {
      on_join();
    }
    ReleasePossessionLocked();
  }
  body();
  {
    RtLock lock(*mu_);
    self.thread = runtime_.CurrentThreadId();
    if (!possessed_) {
      possessed_ = true;
      possessor_ = self.thread;
    } else {
      reentry_.push_back(&self);
      BlockLocked(&self);
    }
    --crowd.members_;
    if (on_leave) {
      on_leave();
    }
  }
}

void Serializer::ReleasePossessionLocked() {
  // 1. Crowd re-entries have absolute precedence: they are the only events that can
  //    change crowd state, so queue guards over crowds cannot make progress before them.
  if (!reentry_.empty()) {
    Waiter* waiter = reentry_.front();
    reentry_.pop_front();
    waiter->granted = true;
    possessor_ = waiter->thread;
    cv_->NotifyAll();
    return;
  }
  // 2. Automatic signalling: first satisfied queue head, in queue-creation order.
  for (QueueBase* queue : queues_) {
    if (queue->waiters_.empty()) {
      continue;
    }
    auto* head = static_cast<Waiter*>(queue->waiters_.front());
    if (head->guard && head->guard()) {
      queue->waiters_.pop_front();
      head->granted = true;
      possessor_ = head->thread;
      cv_->NotifyAll();
      return;
    }
  }
  // 3. New entrants, FIFO.
  if (!entry_.empty()) {
    Waiter* waiter = entry_.front();
    entry_.pop_front();
    waiter->granted = true;
    possessor_ = waiter->thread;
    cv_->NotifyAll();
    return;
  }
  possessed_ = false;
  possessor_ = 0;
}

void Serializer::BlockLocked(Waiter* waiter) {
  while (!waiter->granted) {
    cv_->Wait(*mu_);
  }
}

void Serializer::AssertPossessedByCaller() const {
  assert(possessed_ && "serializer operation without possession");
  assert(possessor_ == runtime_.CurrentThreadId() &&
         "serializer operation by a process not in possession");
}

}  // namespace syneval
