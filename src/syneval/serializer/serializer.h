// Serializers [Atkinson & Hewitt, "Synchronization and Proof Techniques for
// Serializers", IEEE TSE 1979].
//
// A serializer encapsulates a resource: processes gain *possession* of the serializer,
// may wait on named queues with a guard predicate, and execute resource operations
// inside a *crowd*, releasing possession for the duration (`JoinCrowd`) so other
// processes can be scheduled — this is the structural fix for the nested-monitor-call
// problem that Section 5.2 of the paper credits serializers with.
//
// Signalling is automatic: whenever possession is released, the serializer re-evaluates
// the guard of the head of each queue (in queue-creation order) and transfers possession
// to the first satisfied head; processes returning from a crowd body re-enter ahead of
// queue heads so that crowd-state guards make progress. No explicit signal exists, which
// is exactly the property the paper contrasts with monitors: request-time information
// (queue order) and request-type information (different guards) no longer conflict,
// because processes waiting for different conditions can share one queue.
//
// Queues come in two flavours: FIFO `Queue` (the original construct) and
// `PriorityQueue` (ordered by a caller-supplied key) — the paper records that "local
// variables and priority queues had to be added later" to handle request parameters;
// the disk-scheduler, alarm-clock and SJN solutions use them.
//
// Guards must be pure functions of serializer-protected state (queue lengths, crowd
// sizes, variables only mutated while in possession): they are re-evaluated only at
// possession-release points.
//
// Canonical operation shape (readers-priority database, cf. the A&H paper):
//
//   void Read(const AccessBody& body) {
//     Serializer::Region region(s);                      // gain possession
//     s.Enqueue(read_q, [&] { return write_crowd.Empty(); });
//     s.JoinCrowd(read_crowd, body);                     // body runs outside possession
//   }                                                    // possession released

#ifndef SYNEVAL_SERIALIZER_SERIALIZER_H_
#define SYNEVAL_SERIALIZER_SERIALIZER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "syneval/runtime/runtime.h"

namespace syneval {

class Serializer {
 public:
  using Guard = std::function<bool()>;

  explicit Serializer(Runtime& runtime);

  Serializer(const Serializer&) = delete;
  Serializer& operator=(const Serializer&) = delete;

  // Common queue behaviour: a line of processes waiting inside the serializer. Only the
  // head's guard is ever evaluated. Queues must be created before concurrent use; their
  // creation order is their evaluation priority at possession release.
  class QueueBase {
   public:
    QueueBase(Serializer& serializer, std::string name);
    virtual ~QueueBase() = default;

    QueueBase(const QueueBase&) = delete;
    QueueBase& operator=(const QueueBase&) = delete;

    bool Empty() const { return waiters_.empty(); }
    int Length() const { return static_cast<int>(waiters_.size()); }
    const std::string& name() const { return name_; }

   private:
    friend class Serializer;
    // Inserts a waiter record per the queue discipline.
    virtual void Insert(void* waiter) = 0;

   protected:
    Serializer& serializer_;
    std::string name_;
    std::deque<void*> waiters_;
  };

  // Strict FIFO queue (the original A&H construct).
  class Queue : public QueueBase {
   public:
    Queue(Serializer& serializer, std::string name) : QueueBase(serializer, std::move(name)) {}

   private:
    void Insert(void* waiter) override;
  };

  // Queue ordered by ascending priority key, FIFO among equal keys (the later A&H
  // extension for request parameters).
  class PriorityQueue : public QueueBase {
   public:
    PriorityQueue(Serializer& serializer, std::string name)
        : QueueBase(serializer, std::move(name)) {}

    // Priority of the head waiter; only meaningful when !Empty().
    std::int64_t MinPriority() const;

   private:
    void Insert(void* waiter) override;
  };

  // The multiset of processes currently executing a resource operation. Guards typically
  // test crowd emptiness — the synchronization-state information that monitors force the
  // programmer to count by hand (Section 5.2).
  class Crowd {
   public:
    Crowd(Serializer& serializer, std::string name);

    Crowd(const Crowd&) = delete;
    Crowd& operator=(const Crowd&) = delete;

    bool Empty() const { return members_ == 0; }
    int Size() const { return members_; }
    const std::string& name() const { return name_; }

   private:
    friend class Serializer;
    Serializer& serializer_;
    std::string name_;
    int members_ = 0;
  };

  // Gains/releases possession. Prefer the Region RAII wrapper.
  void Acquire();
  void Release();

  // Releases possession and waits in `queue` until (a) this process is at the queue
  // head, (b) `guard` evaluates true, and (c) possession is free; then re-gains
  // possession. Must be called while in possession. For a PriorityQueue, `priority`
  // orders the waiters (FIFO among equals).
  void Enqueue(Queue& queue, Guard guard);
  void Enqueue(PriorityQueue& queue, std::int64_t priority, Guard guard);

  // Adds the caller to `crowd`, releases possession, runs `body`, re-gains possession
  // (with precedence over queue heads and new entrants), and leaves the crowd.
  // Must be called while in possession.
  void JoinCrowd(Crowd& crowd, const std::function<void()>& body);

  // As above, with trace hooks run under the serializer lock: `on_join` right after
  // crowd membership is added (the admission instant), `on_leave` right after it is
  // removed (the release instant). See the instrumentation contract in trace/recorder.h.
  void JoinCrowd(Crowd& crowd, const std::function<void()>& body,
                 const std::function<void()>& on_join, const std::function<void()>& on_leave);

  // RAII possession region.
  class Region {
   public:
    explicit Region(Serializer& serializer) : serializer_(serializer) { serializer_.Acquire(); }
    ~Region() { serializer_.Release(); }

    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    Serializer& serializer_;
  };

 private:
  struct Waiter;

  void EnqueueImpl(QueueBase& queue, std::int64_t priority, Guard guard);

  // Transfers possession to the most deserving waiter, or marks the serializer free.
  // Order: crowd re-entries, then satisfied queue heads (queue creation order), then
  // the entry queue. Caller holds mu_.
  void ReleasePossessionLocked();

  void BlockLocked(Waiter* waiter);
  void AssertPossessedByCaller() const;

  // Telemetry at a possession grant: wait time, admission count, tenure start, queue
  // depth. No-op when tel_ is null. Caller holds mu_.
  void TelemetryGrantLocked(Waiter* waiter);

  // Total blocked processes: entry + crowd re-entries + all queue waiters. Holds mu_.
  std::int64_t BlockedCountLocked() const;

  Runtime& runtime_;
  AnomalyDetector* det_ = nullptr;  // From runtime_.anomaly_detector(); may be null.
  std::string det_name_;            // Registered name when det_ is attached.
  MechanismStats* tel_ = nullptr;   // "serializer" bundle; null when not attached.
  std::uint64_t possessor_since_ = 0;  // NowNanos at the current grant (telemetry).
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  bool possessed_ = false;
  std::uint32_t possessor_ = 0;
  std::deque<Waiter*> entry_;
  std::deque<Waiter*> reentry_;
  std::vector<QueueBase*> queues_;  // Registration order = evaluation priority.
  std::uint64_t arrivals_ = 0;      // FIFO tie-break for priority queues.
};

}  // namespace syneval

#endif  // SYNEVAL_SERIALIZER_SERIALIZER_H_
