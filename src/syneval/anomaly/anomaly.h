// Anomaly taxonomy for the concurrency anomaly detector.
//
// Bloom's methodology judges mechanisms by the constraint violations they admit, but a
// violating schedule is only useful if it can be *explained*: which threads, which
// conditions, which signals. The detector (see detector.h) classifies misbehaviour into
// four kinds, each directly attributable to the wait-for state it was derived from:
//
//   kDeadlock    — a cycle in the wait-for graph (thread → resource → holder/signaller);
//   kLostWakeup  — a waiter stuck on a condition whose last signal was delivered while
//                  nobody was waiting (the classic signal-before-wait race);
//   kStuckWaiter — a waiter that cannot proceed but matches no sharper diagnosis
//                  (missed-signal states, waits during a global stall, stale OS waits);
//   kStarvation  — a requester overtaken more than K times by later requests
//                  (logical-clock watchdog over the trace).

#ifndef SYNEVAL_ANOMALY_ANOMALY_H_
#define SYNEVAL_ANOMALY_ANOMALY_H_

#include <cstdint>
#include <string>

namespace syneval {

enum class AnomalyKind : std::uint8_t {
  kDeadlock = 0,
  kLostWakeup = 1,
  kStuckWaiter = 2,
  kStarvation = 3,
};

// Short name: "deadlock", "lost-wakeup", "stuck-waiter", "starvation".
const char* AnomalyKindName(AnomalyKind kind);

// One detection. `description` is the full diagnosis (for deadlocks: the named wait-for
// cycle); `thread`/`resource` identify the primary victim for tabulation.
struct Anomaly {
  AnomalyKind kind = AnomalyKind::kDeadlock;
  std::uint64_t clock = 0;   // Detector logical clock at detection time.
  std::uint32_t thread = 0;  // Primary victim thread (0 when not thread-specific).
  std::string resource;      // Registered name of the implicated resource (or op).
  std::string description;   // Human-readable diagnosis, e.g. the named cycle.

  std::string ToString() const;
};

// Per-kind counters, summed across trials by the sweep machinery (SweepOutcome).
struct AnomalyCounts {
  int deadlocks = 0;
  int lost_wakeups = 0;
  int stuck_waiters = 0;
  int starvations = 0;

  int total() const { return deadlocks + lost_wakeups + stuck_waiters + starvations; }
  bool Clean() const { return total() == 0; }
  AnomalyCounts& operator+=(const AnomalyCounts& other);

  // "none" or e.g. "1 deadlock, 2 stuck waiters".
  std::string Summary() const;
};

}  // namespace syneval

#endif  // SYNEVAL_ANOMALY_ANOMALY_H_
