#include "syneval/anomaly/anomaly.h"

#include <sstream>

namespace syneval {

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kDeadlock:
      return "deadlock";
    case AnomalyKind::kLostWakeup:
      return "lost-wakeup";
    case AnomalyKind::kStuckWaiter:
      return "stuck-waiter";
    case AnomalyKind::kStarvation:
      return "starvation";
  }
  return "?";
}

std::string Anomaly::ToString() const {
  std::ostringstream os;
  os << "[" << AnomalyKindName(kind) << " @" << clock << "] " << description;
  return os.str();
}

AnomalyCounts& AnomalyCounts::operator+=(const AnomalyCounts& other) {
  deadlocks += other.deadlocks;
  lost_wakeups += other.lost_wakeups;
  stuck_waiters += other.stuck_waiters;
  starvations += other.starvations;
  return *this;
}

namespace {

void AppendCount(std::ostringstream& os, bool& first, int count, const char* singular,
                 const char* plural) {
  if (count == 0) {
    return;
  }
  if (!first) {
    os << ", ";
  }
  os << count << " " << (count == 1 ? singular : plural);
  first = false;
}

}  // namespace

std::string AnomalyCounts::Summary() const {
  if (Clean()) {
    return "none";
  }
  std::ostringstream os;
  bool first = true;
  AppendCount(os, first, deadlocks, "deadlock", "deadlocks");
  AppendCount(os, first, lost_wakeups, "lost wakeup", "lost wakeups");
  AppendCount(os, first, stuck_waiters, "stuck waiter", "stuck waiters");
  AppendCount(os, first, starvations, "starvation", "starvations");
  return os.str();
}

}  // namespace syneval
