// AnomalyDetector: wait-for-graph + signal-accounting + starvation watchdog.
//
// The detector is a passive observer shared by a Runtime and the mechanism objects built
// on top of it. Mechanisms register their semantic resources (monitor locks, conditions,
// serializer queues, semaphores) at construction and call the On* hooks at the precise
// points where a thread blocks, wakes, acquires, releases, or signals. From those hooks
// the detector maintains:
//
//   * a wait-for graph — edges thread → resource (blocked-on) and resource → thread
//     (held-by, for kLock/kSemaphore). A deadlock is a cycle containing at least one
//     hold edge; condition/queue resources contribute "closure" edges to every other
//     blocked thread (if everyone is blocked, whoever could signal the condition is
//     itself stuck), which lets the detector name cycles through conditions like the
//     classic nested-monitor deadlock;
//   * per-condition signal accounting — counts of signals delivered to an empty wait
//     queue, plus the logical clocks of the last signal and last empty signal, which
//     separate lost wakeups (waiter arrived after a signal fell on the floor) from
//     plain stuck waiters;
//   * a logical-clock starvation watchdog — fed request/enter events from the trace
//     (via TraceObserver), it flags any pending request overtaken by more than K
//     later-arriving admissions.
//
// Two consumption modes:
//   * DetRuntime calls DiagnoseStuck() exactly when its scheduler finds no runnable
//     thread — every blocked thread is then classified (deadlock member, lost wakeup,
//     or stuck waiter) with zero false positives;
//   * OsRuntime runs a sampling watchdog thread that calls Poll(now) periodically;
//     Poll applies a wall-clock threshold before flagging, and deduplicates findings.
//
// Locking: the detector's recursive mutex is strictly *after* any runtime or mechanism
// mutex and strictly *before* the TraceRecorder mutex in the global lock order. Hook
// implementations therefore never call back into runtime objects, and trace events are
// emitted through TraceRecorder::Record which takes only the recorder lock.

#ifndef SYNEVAL_ANOMALY_DETECTOR_H_
#define SYNEVAL_ANOMALY_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "syneval/anomaly/anomaly.h"
#include "syneval/trace/recorder.h"

namespace syneval {

// Semantic class of a registered resource. Hold edges (resource → holder) exist only for
// kLock and kSemaphore; kCondition and kQueue block threads but have no owner, so they
// contribute closure edges instead, and only they participate in signal accounting.
enum class ResourceKind : std::uint8_t {
  kLock = 0,
  kCondition = 1,
  kQueue = 2,
  kSemaphore = 3,
};

const char* ResourceKindName(ResourceKind kind);

class AnomalyDetector : public TraceObserver {
 public:
  struct Options {
    // Starvation: a pending request overtaken by more than this many later-arriving
    // admissions of competing requests is flagged. High enough that the scale-1
    // conformance workloads (tens of operations) can never trip it by accident.
    int starvation_overtake_limit = 64;
    // Poll(): only waits older than this wall-clock age are considered stuck.
    std::int64_t stuck_wait_nanos = 100'000'000;  // 100 ms
    // Hard cap on stored anomalies (diagnostic strings can be large).
    int max_reported_anomalies = 64;
  };

  AnomalyDetector() = default;
  explicit AnomalyDetector(const Options& options) : options_(options) {}

  AnomalyDetector(const AnomalyDetector&) = delete;
  AnomalyDetector& operator=(const AnomalyDetector&) = delete;

  // ---- Registration (called at construction time by runtimes and mechanisms) ----

  // Registers a thread id with a display name.
  void RegisterThread(std::uint32_t thread, const std::string& name);

  // Marks a thread finished; its wait records are discarded.
  void OnThreadFinish(std::uint32_t thread);

  // Registers `resource` under a unique display name derived from `base` ("base" for the
  // first registration of that base, "base#2", "base#3", ... after). Returns the name.
  // Re-registering the same pointer updates kind/name (pointer reuse across trials).
  std::string RegisterResource(const void* resource, ResourceKind kind,
                               const std::string& base);

  // ---- Blocking hooks (called by runtimes and mechanisms at state transitions) ----

  // `thread` is about to block on `resource`. Pushes a wait record; records nest
  // (e.g. blocked on a monitor's entry queue while also inside a condition wait).
  void OnBlock(std::uint32_t thread, const void* resource);

  // `thread` resumed from its innermost wait on `resource`.
  void OnWake(std::uint32_t thread, const void* resource);

  // `thread` now holds `resource` (locks: exclusive; semaphores: FIFO multiset).
  void OnAcquire(std::uint32_t thread, const void* resource);

  // `thread` released `resource` (semaphores: the oldest holder is retired).
  void OnRelease(std::uint32_t thread, const void* resource);

  // `thread` signalled `resource` (condition/queue) while `waiters_before` threads were
  // waiting on it. A signal to an empty queue is the seed of a lost wakeup.
  void OnSignal(std::uint32_t thread, const void* resource, int waiters_before,
                bool broadcast = false);

  // ---- Trace integration ----

  // Detections are mirrored into `trace` as kMark events with op "anomaly.<kind>".
  void AttachTrace(TraceRecorder* trace) { trace_ = trace; }

  // TraceObserver: consumes kRequest/kEnter events for the starvation watchdog.
  // Ignores kMark (including this detector's own anomaly marks).
  void OnTraceEvent(const Event& event) override;

  // ---- Runtime teardown visibility ----

  // Runtimes push their Aborting() state here (the detector must never call back into
  // a runtime: hooks run under runtime scheduler locks and Runtime::Aborting() takes
  // them again). While aborting, every observation hook and Poll() is a no-op: threads
  // unwinding through teardown release and re-signal resources in states that violate
  // the protocols being observed, and faults injected during that unwind would be
  // double-counted as lost wakeups. Reversible, unlike the DiagnoseStuck freeze, so an
  // OS runtime can suspend observation during a controlled stop and resume after.
  void SetAborting(bool aborting);

  // ---- Load-adaptive Poll threshold ----

  // Scales the Poll() stuck-wait threshold: waits are flagged only when older than
  // options.stuck_wait_nanos × max(1, scale). The OsRuntime watchdog sets this every
  // cycle from the process-wide active-trial count (supervisor.h's ActiveTrials()), so
  // a fully-loaded parallel sweep — where every trial runs slower by roughly the
  // oversubscription factor — doesn't read ordinary scheduling delay as starvation.
  void SetPollThresholdScale(int scale);

  // The threshold Poll() currently applies (base × scale), for gauge export.
  std::int64_t effective_stuck_wait_nanos() const;

  // ---- Diagnosis ----

  // Exact diagnosis for a globally stuck deterministic run: classifies every blocked
  // thread, reporting named wait-for cycles for deadlock members. Freezes the detector
  // afterwards so hook calls during teardown unwinding are ignored. Returns the number
  // of anomalies added.
  int DiagnoseStuck();

  // Sampling diagnosis for live OS runs: flags waits older than stuck_wait_nanos,
  // reporting cycles where they exist. Each wait/cycle is reported at most once.
  // Returns the number of anomalies added.
  int Poll(std::int64_t now_nanos);

  // ---- Results ----

  AnomalyCounts counts() const;
  std::vector<Anomaly> anomalies() const;

  // All anomalies rendered with ToString(), joined by `separator`; "" when clean.
  std::string Report(const std::string& separator = "\n") const;

  struct ConditionStats {
    std::string name;
    int signals = 0;        // Total signals/broadcasts delivered.
    int empty_signals = 0;  // Signals delivered while no thread was waiting.
  };

  // Signal accounting for a registered condition/queue (name as returned by
  // RegisterResource). Returns zeroed stats for unknown names.
  ConditionStats StatsFor(const std::string& resource_name) const;

  struct WaitSnapshot {
    int blocked_threads = 0;            // Live threads with at least one open wait.
    std::int64_t longest_wait_nanos = 0;  // Age of the oldest open wait (OS mode; 0 if
                                          // no wall timestamps are available).
  };

  // Instantaneous view of open waits, for gauge export by the OsRuntime watchdog.
  // Ages are measured from each thread's *outermost* wait record against `now_nanos`.
  WaitSnapshot SnapshotWaits(std::int64_t now_nanos) const;

  struct ResourceSnapshot {
    const void* resource = nullptr;
    ResourceKind kind = ResourceKind::kLock;
    std::string name;                    // Unique name from RegisterResource.
    std::vector<std::uint32_t> holders;  // Acquisition order; empty for conditions.
    int signals = 0;
    int empty_signals = 0;
  };

  // Registered resources with their current holders and signal accounting, in
  // registration-name order. The postmortem builder joins this against flight-recorder
  // events to resolve raw resource pointers into the names the anomaly text uses.
  std::vector<ResourceSnapshot> SnapshotResources() const;

 private:
  struct WaitRecord {
    const void* resource = nullptr;
    std::uint64_t clock = 0;        // Detector logical clock when the wait began.
    std::int64_t wall_nanos = 0;    // Wall-clock time when the wait began (OS mode).
    bool flagged = false;           // Already reported by Poll().
  };

  struct ThreadInfo {
    std::string name;
    bool finished = false;
    // Innermost wait last; front() is the outermost wait, used for diagnosis (the
    // outermost frame names the semantic resource the thread is actually stuck on).
    std::vector<WaitRecord> waits;
  };

  struct ResourceInfo {
    ResourceKind kind = ResourceKind::kLock;
    std::string name;
    // Holders in acquisition order (size ≤ 1 for kLock; a multiset for kSemaphore).
    std::deque<std::uint32_t> holders;
    int signals = 0;
    int empty_signals = 0;
    std::uint64_t last_signal_clock = 0;
    std::uint64_t last_empty_signal_clock = 0;
  };

  struct PendingOp {
    std::uint32_t thread = 0;
    std::string op;
    std::uint64_t request_seq = 0;
    int overtakes = 0;
    bool flagged = false;
  };

  std::string ThreadNameLocked(std::uint32_t thread) const;
  std::string ResourceNameLocked(const void* resource) const;
  void EmitLocked(Anomaly anomaly);

  // Wait-for cycle search rooted at `thread`'s outermost wait. On success renders the
  // cycle ("t2 'consumer' → condition X → t3 'producer' → lock Y (held by ...) → t2")
  // into `*cycle_text` and a canonical dedupe key into `*cycle_key`.
  bool FindCycleLocked(std::uint32_t thread, std::string* cycle_text,
                       std::string* cycle_key) const;

  // Classifies one blocked thread (cycle → deadlock; empty-signal evidence →
  // lost wakeup; otherwise stuck waiter) and emits the anomaly. `reported_cycles`
  // dedupes cycles across the threads of one diagnosis pass.
  void ClassifyBlockedLocked(std::uint32_t thread, const WaitRecord& record,
                             std::set<std::string>* reported_cycles);

  std::int64_t EffectiveStuckWaitLocked() const;

  Options options_;
  TraceRecorder* trace_ = nullptr;
  int poll_threshold_scale_ = 1;

  mutable std::recursive_mutex mu_;
  std::uint64_t clock_ = 0;  // Advances on every hook call; orders waits vs. signals.
  bool frozen_ = false;      // Set by DiagnoseStuck(); all later hooks are no-ops.
  bool aborting_ = false;    // Pushed by SetAborting(); hooks/Poll no-ops while set.
  std::map<std::uint32_t, ThreadInfo> threads_;
  std::map<const void*, ResourceInfo> resources_;
  std::map<std::string, int> name_counts_;
  std::map<std::uint64_t, PendingOp> pending_ops_;  // op_instance → pending request.
  std::set<std::string> reported_poll_cycles_;
  std::vector<Anomaly> anomalies_;
  AnomalyCounts counts_;
};

}  // namespace syneval

#endif  // SYNEVAL_ANOMALY_DETECTOR_H_
