#include "syneval/anomaly/detector.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

namespace syneval {

namespace {

std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kLock:
      return "lock";
    case ResourceKind::kCondition:
      return "condition";
    case ResourceKind::kQueue:
      return "queue";
    case ResourceKind::kSemaphore:
      return "semaphore";
  }
  return "?";
}

void AnomalyDetector::RegisterThread(std::uint32_t thread, const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ThreadInfo& info = threads_[thread];
  info.name = name;
  info.finished = false;
}

void AnomalyDetector::OnThreadFinish(std::uint32_t thread) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  ThreadInfo& info = threads_[thread];
  info.finished = true;
  info.waits.clear();
}

std::string AnomalyDetector::RegisterResource(const void* resource, ResourceKind kind,
                                              const std::string& base) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const int count = ++name_counts_[base];
  std::string name = base;
  if (count > 1) {
    name += "#" + std::to_string(count);
  }
  ResourceInfo& info = resources_[resource];
  info = ResourceInfo{};
  info.kind = kind;
  info.name = name;
  return name;
}

void AnomalyDetector::OnBlock(std::uint32_t thread, const void* resource) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  WaitRecord record;
  record.resource = resource;
  record.clock = ++clock_;
  record.wall_nanos = SteadyNowNanos();
  threads_[thread].waits.push_back(record);
}

void AnomalyDetector::OnWake(std::uint32_t thread, const void* resource) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  ++clock_;
  std::vector<WaitRecord>& waits = threads_[thread].waits;
  for (auto it = waits.rbegin(); it != waits.rend(); ++it) {
    if (it->resource == resource) {
      waits.erase(std::next(it).base());
      return;
    }
  }
}

void AnomalyDetector::OnAcquire(std::uint32_t thread, const void* resource) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  ++clock_;
  ResourceInfo& info = resources_[resource];
  if (info.kind == ResourceKind::kLock) {
    info.holders.clear();
  }
  info.holders.push_back(thread);
}

void AnomalyDetector::OnRelease(std::uint32_t thread, const void* resource) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  ++clock_;
  ResourceInfo& info = resources_[resource];
  if (info.kind == ResourceKind::kLock) {
    info.holders.clear();
  } else if (!info.holders.empty()) {
    // Semaphores: V retires the oldest holder (FIFO), so private-semaphore patterns
    // where one thread Ps and another Vs do not accumulate stale holders.
    info.holders.pop_front();
  }
  (void)thread;
}

void AnomalyDetector::OnSignal(std::uint32_t thread, const void* resource,
                               int waiters_before, bool broadcast) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  (void)thread;
  (void)broadcast;
  ++clock_;
  ResourceInfo& info = resources_[resource];
  info.signals += 1;
  info.last_signal_clock = clock_;
  if (waiters_before == 0) {
    info.empty_signals += 1;
    info.last_empty_signal_clock = clock_;
  }
}

void AnomalyDetector::OnTraceEvent(const Event& event) {
  if (event.kind == EventKind::kMark || event.kind == EventKind::kExit) {
    return;  // Includes this detector's own "anomaly.*" marks — never re-enter.
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return;
  }
  if (event.kind == EventKind::kRequest) {
    PendingOp& pending = pending_ops_[event.op_instance];
    pending.thread = event.thread;
    pending.op = event.op;
    pending.request_seq = event.seq;
    return;
  }
  // kEnter: the entering request's arrival time decides who it overtook.
  std::uint64_t enter_request_seq = event.seq;
  auto self = pending_ops_.find(event.op_instance);
  if (self != pending_ops_.end()) {
    enter_request_seq = self->second.request_seq;
    pending_ops_.erase(self);
  }
  for (auto& [instance, pending] : pending_ops_) {
    if (pending.request_seq >= enter_request_seq) {
      continue;  // The entrant arrived first; no overtake.
    }
    pending.overtakes += 1;
    if (pending.overtakes > options_.starvation_overtake_limit && !pending.flagged) {
      pending.flagged = true;
      Anomaly anomaly;
      anomaly.kind = AnomalyKind::kStarvation;
      anomaly.clock = event.seq;
      anomaly.thread = pending.thread;
      anomaly.resource = pending.op;
      std::ostringstream os;
      os << ThreadNameLocked(pending.thread) << " request '" << pending.op << "' (seq "
         << pending.request_seq << ") overtaken " << pending.overtakes
         << " times (limit " << options_.starvation_overtake_limit << ")";
      anomaly.description = os.str();
      EmitLocked(std::move(anomaly));
    }
  }
}

std::string AnomalyDetector::ThreadNameLocked(std::uint32_t thread) const {
  std::ostringstream os;
  os << "t" << thread;
  auto it = threads_.find(thread);
  if (it != threads_.end() && !it->second.name.empty()) {
    os << " '" << it->second.name << "'";
  }
  return os.str();
}

std::string AnomalyDetector::ResourceNameLocked(const void* resource) const {
  auto it = resources_.find(resource);
  if (it != resources_.end() && !it->second.name.empty()) {
    return it->second.name;
  }
  std::ostringstream os;
  os << "<unregistered " << resource << ">";
  return os.str();
}

void AnomalyDetector::EmitLocked(Anomaly anomaly) {
  anomaly.clock = anomaly.clock == 0 ? clock_ : anomaly.clock;
  switch (anomaly.kind) {
    case AnomalyKind::kDeadlock:
      counts_.deadlocks += 1;
      break;
    case AnomalyKind::kLostWakeup:
      counts_.lost_wakeups += 1;
      break;
    case AnomalyKind::kStuckWaiter:
      counts_.stuck_waiters += 1;
      break;
    case AnomalyKind::kStarvation:
      counts_.starvations += 1;
      break;
  }
  if (trace_ != nullptr) {
    Event event;
    event.thread = anomaly.thread;
    event.kind = EventKind::kMark;
    event.op = std::string("anomaly.") + AnomalyKindName(anomaly.kind);
    trace_->Record(std::move(event));
  }
  if (static_cast<int>(anomalies_.size()) < options_.max_reported_anomalies) {
    anomalies_.push_back(std::move(anomaly));
  }
}

bool AnomalyDetector::FindCycleLocked(std::uint32_t start, std::string* cycle_text,
                                      std::string* cycle_key) const {
  // One hop in the wait-for graph: a blocked thread's outermost wait names a resource;
  // the resource leads to its holders (hold edges, locks/semaphores) or — for
  // conditions/queues, which have no owner — to every *other* blocked thread (closure
  // edges: in a stuck state, any potential signaller is itself among the blocked).
  struct Hop {
    std::uint32_t to = 0;
    const void* via = nullptr;
    bool hold = false;
  };
  const auto successors = [this](std::uint32_t thread) {
    std::vector<Hop> hops;
    auto it = threads_.find(thread);
    if (it == threads_.end() || it->second.finished || it->second.waits.empty()) {
      return hops;
    }
    const void* resource = it->second.waits.front().resource;
    auto rit = resources_.find(resource);
    if (rit == resources_.end()) {
      return hops;
    }
    const ResourceInfo& info = rit->second;
    if (info.kind == ResourceKind::kLock || info.kind == ResourceKind::kSemaphore) {
      for (std::uint32_t holder : info.holders) {
        hops.push_back(Hop{holder, resource, /*hold=*/true});
      }
    } else {
      for (const auto& [other, other_info] : threads_) {
        if (other == thread || other_info.finished || other_info.waits.empty()) {
          continue;
        }
        if (other_info.waits.front().resource == resource) {
          continue;  // A peer stuck on the same condition cannot signal it either.
        }
        hops.push_back(Hop{other, resource, /*hold=*/false});
      }
    }
    return hops;
  };

  // Depth-first search for a path start → ... → start containing at least one hold
  // edge (a cycle of pure closure edges is vacuous — it names no ownership at all).
  std::vector<std::uint32_t> path_threads{start};
  std::vector<Hop> path_hops;
  bool found = false;
  const auto dfs = [&](auto&& self, std::uint32_t node, bool hold_seen) -> void {
    if (found) {
      return;
    }
    for (const Hop& hop : successors(node)) {
      if (found) {
        return;
      }
      if (hop.to == start) {
        if (hold_seen || hop.hold) {
          path_hops.push_back(hop);
          found = true;
          return;
        }
        continue;
      }
      if (std::find(path_threads.begin(), path_threads.end(), hop.to) !=
          path_threads.end()) {
        continue;
      }
      path_threads.push_back(hop.to);
      path_hops.push_back(hop);
      self(self, hop.to, hold_seen || hop.hold);
      if (found) {
        return;
      }
      path_threads.pop_back();
      path_hops.pop_back();
    }
  };
  dfs(dfs, start, false);
  if (!found) {
    return false;
  }

  // Canonical key: the cycle's thread ids rotated so the smallest comes first, so the
  // same cycle discovered from different members dedupes to one report.
  std::vector<std::uint32_t> cycle = path_threads;
  const auto smallest = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), smallest, cycle.end());
  std::ostringstream key;
  for (std::uint32_t thread : cycle) {
    key << thread << ">";
  }
  *cycle_key = key.str();

  std::ostringstream text;
  for (std::size_t i = 0; i < path_hops.size(); ++i) {
    const Hop& hop = path_hops[i];
    auto rit = resources_.find(hop.via);
    text << ThreadNameLocked(path_threads[i]) << " -> "
         << (rit != resources_.end() ? ResourceKindName(rit->second.kind) : "resource")
         << " " << ResourceNameLocked(hop.via);
    if (hop.hold) {
      text << " (held by " << ThreadNameLocked(hop.to) << ")";
    }
    text << " -> ";
  }
  text << ThreadNameLocked(start);
  *cycle_text = text.str();
  return true;
}

void AnomalyDetector::ClassifyBlockedLocked(std::uint32_t thread, const WaitRecord& record,
                                            std::set<std::string>* reported_cycles) {
  std::string cycle_text;
  std::string cycle_key;
  if (FindCycleLocked(thread, &cycle_text, &cycle_key)) {
    if (reported_cycles->insert(cycle_key).second) {
      Anomaly anomaly;
      anomaly.kind = AnomalyKind::kDeadlock;
      anomaly.thread = thread;
      anomaly.resource = ResourceNameLocked(record.resource);
      anomaly.description = "wait-for cycle: " + cycle_text;
      EmitLocked(std::move(anomaly));
    }
    return;  // Deadlock member; even if the cycle was already reported, stop here.
  }
  auto rit = resources_.find(record.resource);
  const ResourceInfo* info = rit != resources_.end() ? &rit->second : nullptr;
  Anomaly anomaly;
  anomaly.thread = thread;
  anomaly.resource = ResourceNameLocked(record.resource);
  const bool signal_queue = info != nullptr && (info->kind == ResourceKind::kCondition ||
                                                info->kind == ResourceKind::kQueue);
  if (signal_queue && info->last_empty_signal_clock > 0 &&
      record.clock >= info->last_empty_signal_clock &&
      info->last_signal_clock <= record.clock) {
    // The last signal to this condition was delivered while nobody waited, and this
    // waiter arrived after it: the wakeup it needed already fell on the floor.
    anomaly.kind = AnomalyKind::kLostWakeup;
    std::ostringstream os;
    os << ThreadNameLocked(thread) << " waits on " << anomaly.resource
       << " but its last signal (clock " << info->last_empty_signal_clock
       << ") was delivered to an empty queue before the wait began (clock "
       << record.clock << "); " << info->empty_signals << "/" << info->signals
       << " signals hit an empty queue";
    anomaly.description = os.str();
  } else {
    anomaly.kind = AnomalyKind::kStuckWaiter;
    std::ostringstream os;
    os << ThreadNameLocked(thread) << " stuck waiting on "
       << (info != nullptr ? ResourceKindName(info->kind) : "resource") << " "
       << anomaly.resource << " (wait began at clock " << record.clock << ")";
    if (signal_queue) {
      os << "; condition saw " << info->signals << " signal(s), none since the wait";
    }
    anomaly.description = os.str();
  }
  EmitLocked(std::move(anomaly));
}

void AnomalyDetector::SetAborting(bool aborting) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  aborting_ = aborting;
}

void AnomalyDetector::SetPollThresholdScale(int scale) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  poll_threshold_scale_ = scale < 1 ? 1 : scale;
}

std::int64_t AnomalyDetector::effective_stuck_wait_nanos() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return EffectiveStuckWaitLocked();
}

std::int64_t AnomalyDetector::EffectiveStuckWaitLocked() const {
  return options_.stuck_wait_nanos * poll_threshold_scale_;
}

int AnomalyDetector::DiagnoseStuck() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return 0;
  }
  const int before = counts_.total();
  std::set<std::string> reported_cycles;
  for (const auto& [thread, info] : threads_) {
    if (info.finished || info.waits.empty()) {
      continue;
    }
    ClassifyBlockedLocked(thread, info.waits.front(), &reported_cycles);
  }
  // Teardown unwinding (AbortException) will fire OnWake/OnRelease hooks out of order;
  // the diagnosis above is the final word, so ignore everything after it.
  frozen_ = true;
  return counts_.total() - before;
}

int AnomalyDetector::Poll(std::int64_t now_nanos) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (frozen_ || aborting_) {
    return 0;
  }
  const int before = counts_.total();
  for (auto& [thread, info] : threads_) {
    if (info.finished || info.waits.empty()) {
      continue;
    }
    WaitRecord& record = info.waits.front();
    if (record.flagged || now_nanos - record.wall_nanos < EffectiveStuckWaitLocked()) {
      continue;
    }
    std::string cycle_text;
    std::string cycle_key;
    if (FindCycleLocked(thread, &cycle_text, &cycle_key)) {
      record.flagged = true;
      if (reported_poll_cycles_.insert(cycle_key).second) {
        Anomaly anomaly;
        anomaly.kind = AnomalyKind::kDeadlock;
        anomaly.thread = thread;
        anomaly.resource = ResourceNameLocked(record.resource);
        anomaly.description = "wait-for cycle: " + cycle_text;
        EmitLocked(std::move(anomaly));
      }
      continue;
    }
    record.flagged = true;
    std::set<std::string> unused;
    ClassifyBlockedLocked(thread, record, &unused);
  }
  return counts_.total() - before;
}

AnomalyCounts AnomalyDetector::counts() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return counts_;
}

std::vector<Anomaly> AnomalyDetector::anomalies() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return anomalies_;
}

std::string AnomalyDetector::Report(const std::string& separator) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::ostringstream os;
  for (std::size_t i = 0; i < anomalies_.size(); ++i) {
    if (i > 0) {
      os << separator;
    }
    os << anomalies_[i].ToString();
  }
  return os.str();
}

AnomalyDetector::ConditionStats AnomalyDetector::StatsFor(
    const std::string& resource_name) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ConditionStats stats;
  stats.name = resource_name;
  for (const auto& [resource, info] : resources_) {
    if (info.name == resource_name) {
      stats.signals = info.signals;
      stats.empty_signals = info.empty_signals;
      break;
    }
  }
  return stats;
}

AnomalyDetector::WaitSnapshot AnomalyDetector::SnapshotWaits(std::int64_t now_nanos) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  WaitSnapshot snapshot;
  for (const auto& [thread, info] : threads_) {
    if (info.finished || info.waits.empty()) {
      continue;
    }
    ++snapshot.blocked_threads;
    const WaitRecord& outermost = info.waits.front();
    if (outermost.wall_nanos > 0 && now_nanos > outermost.wall_nanos) {
      snapshot.longest_wait_nanos =
          std::max(snapshot.longest_wait_nanos, now_nanos - outermost.wall_nanos);
    }
  }
  return snapshot;
}

std::vector<AnomalyDetector::ResourceSnapshot> AnomalyDetector::SnapshotResources() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<ResourceSnapshot> snapshots;
  snapshots.reserve(resources_.size());
  for (const auto& [resource, info] : resources_) {
    ResourceSnapshot snapshot;
    snapshot.resource = resource;
    snapshot.kind = info.kind;
    snapshot.name = info.name;
    snapshot.holders.assign(info.holders.begin(), info.holders.end());
    snapshot.signals = info.signals;
    snapshot.empty_signals = info.empty_signals;
    snapshots.push_back(std::move(snapshot));
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const ResourceSnapshot& a, const ResourceSnapshot& b) { return a.name < b.name; });
  return snapshots;
}

}  // namespace syneval
