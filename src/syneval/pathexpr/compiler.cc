#include "syneval/pathexpr/compiler.h"

#include <sstream>
#include <utility>

#include "syneval/pathexpr/parser.h"

namespace syneval {

namespace {

// Per-program compilation context: allocates counters/braces/predicates and accumulates
// operation alternatives.
class Compiler {
 public:
  explicit Compiler(const std::vector<PathDecl>& decls) {
    for (std::size_t i = 0; i < decls.size(); ++i) {
      path_index_ = static_cast<int>(i);
      seq_counter_ = 0;
      brace_counter_ = 0;
      bound_counter_ = 0;
      out_.path_sources.push_back(decls[i].source);
      TranslatePathTop(*decls[i].body);
    }
  }

  CompiledPaths Take() { return std::move(out_); }

 private:
  std::string Prefix() const {
    std::ostringstream os;
    os << "p" << path_index_ << ".";
    return os.str();
  }

  int NewCounter(std::int64_t init, const std::string& label) {
    out_.counter_init.push_back(init);
    out_.counter_labels.push_back(label);
    return static_cast<int>(out_.counter_init.size()) - 1;
  }

  int NewBrace(const std::string& label) {
    out_.brace_labels.push_back(label);
    return static_cast<int>(out_.brace_labels.size()) - 1;
  }

  int PredicateId(const std::string& name) {
    for (std::size_t i = 0; i < out_.predicate_names.size(); ++i) {
      if (out_.predicate_names[i] == name) {
        return static_cast<int>(i);
      }
    }
    out_.predicate_names.push_back(name);
    return static_cast<int>(out_.predicate_names.size()) - 1;
  }

  static PathAction Acquire(int counter) {
    PathAction action;
    action.kind = PathAction::Kind::kAcquire;
    action.index = counter;
    return action;
  }

  static PathAction Release(int counter) {
    PathAction action;
    action.kind = PathAction::Kind::kRelease;
    action.index = counter;
    return action;
  }

  void TranslatePathTop(const PathNode& body) {
    if (body.kind == PathNode::Kind::kBounded) {
      // `path n:(e) end`: the bound replaces the repetition counter.
      const int bound = NewCounter(body.bound, Prefix() + "B0");
      Translate(*body.children[0], {Acquire(bound)}, {Release(bound)});
      return;
    }
    const int cycle = NewCounter(1, Prefix() + "S");
    Translate(body, {Acquire(cycle)}, {Release(cycle)});
  }

  void Translate(const PathNode& node, std::vector<PathAction> pre,
                 std::vector<PathAction> post) {
    switch (node.kind) {
      case PathNode::Kind::kName: {
        PathAlternative alternative;
        alternative.begin = std::move(pre);
        alternative.end = std::move(post);
        AddAlternative(node.name, std::move(alternative));
        break;
      }
      case PathNode::Kind::kSequence: {
        const std::size_t n = node.children.size();
        std::vector<int> links;
        for (std::size_t i = 0; i + 1 < n; ++i) {
          std::ostringstream label;
          label << Prefix() << "T" << seq_counter_++;
          links.push_back(NewCounter(0, label.str()));
        }
        for (std::size_t i = 0; i < n; ++i) {
          std::vector<PathAction> child_pre = i == 0 ? pre
                                                     : std::vector<PathAction>{
                                                           Acquire(links[i - 1])};
          std::vector<PathAction> child_post = i + 1 == n ? post
                                                          : std::vector<PathAction>{
                                                                Release(links[i])};
          Translate(*node.children[i], std::move(child_pre), std::move(child_post));
        }
        break;
      }
      case PathNode::Kind::kSelection: {
        for (const auto& child : node.children) {
          Translate(*child, pre, post);
        }
        break;
      }
      case PathNode::Kind::kConcurrent: {
        std::ostringstream label;
        label << Prefix() << "C" << brace_counter_++;
        const int brace = NewBrace(label.str());
        PathAction enter;
        enter.kind = PathAction::Kind::kBraceEnter;
        enter.index = brace;
        enter.nested = std::move(pre);
        PathAction exit;
        exit.kind = PathAction::Kind::kBraceExit;
        exit.index = brace;
        exit.nested = std::move(post);
        Translate(*node.children[0], {std::move(enter)}, {std::move(exit)});
        break;
      }
      case PathNode::Kind::kBounded: {
        std::ostringstream label;
        label << Prefix() << "B" << ++bound_counter_;
        const int bound = NewCounter(node.bound, label.str());
        pre.push_back(Acquire(bound));
        std::vector<PathAction> child_post;
        child_post.push_back(Release(bound));
        for (auto& action : post) {
          child_post.push_back(std::move(action));
        }
        Translate(*node.children[0], std::move(pre), std::move(child_post));
        break;
      }
      case PathNode::Kind::kGuarded: {
        PathAction guard;
        guard.kind = PathAction::Kind::kGuard;
        guard.index = PredicateId(node.name);
        pre.push_back(std::move(guard));
        Translate(*node.children[0], std::move(pre), std::move(post));
        break;
      }
    }
  }

  void AddAlternative(const std::string& op, PathAlternative alternative) {
    std::vector<OpInPath>& paths = out_.ops[op];
    if (paths.empty() || paths.back().path_index != path_index_) {
      OpInPath entry;
      entry.path_index = path_index_;
      paths.push_back(std::move(entry));
    }
    paths.back().alternatives.push_back(std::move(alternative));
  }

  CompiledPaths out_;
  int path_index_ = 0;
  int seq_counter_ = 0;
  int brace_counter_ = 0;
  int bound_counter_ = 0;
};

void DescribeActions(const std::vector<PathAction>& actions, const CompiledPaths& compiled,
                     std::ostringstream& os) {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    const PathAction& action = actions[i];
    switch (action.kind) {
      case PathAction::Kind::kAcquire:
        os << "P(" << compiled.counter_labels[action.index] << ")";
        break;
      case PathAction::Kind::kRelease:
        os << "V(" << compiled.counter_labels[action.index] << ")";
        break;
      case PathAction::Kind::kBraceEnter:
        os << "enter(" << compiled.brace_labels[action.index] << " -> [";
        DescribeActions(action.nested, compiled, os);
        os << "])";
        break;
      case PathAction::Kind::kBraceExit:
        os << "exit(" << compiled.brace_labels[action.index] << " -> [";
        DescribeActions(action.nested, compiled, os);
        os << "])";
        break;
      case PathAction::Kind::kGuard:
        os << "guard(" << compiled.predicate_names[action.index] << ")";
        break;
    }
  }
}

}  // namespace

PathState CompiledPaths::InitialState() const {
  PathState state;
  state.counters = counter_init;
  state.braces.assign(brace_labels.size(), 0);
  return state;
}

int CompiledPaths::CounterIndex(const std::string& label) const {
  for (std::size_t i = 0; i < counter_labels.size(); ++i) {
    if (counter_labels[i] == label) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int CompiledPaths::BraceIndex(const std::string& label) const {
  for (std::size_t i = 0; i < brace_labels.size(); ++i) {
    if (brace_labels[i] == label) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

CompiledPaths CompilePaths(const std::vector<PathDecl>& decls) {
  Compiler compiler(decls);
  return compiler.Take();
}

std::string DescribeCompiledPaths(const CompiledPaths& compiled) {
  std::ostringstream os;
  for (std::size_t i = 0; i < compiled.path_sources.size(); ++i) {
    os << "path[" << i << "]: " << compiled.path_sources[i] << "\n";
  }
  for (const auto& [op, paths] : compiled.ops) {
    os << "op " << op << ":\n";
    for (const OpInPath& in_path : paths) {
      for (std::size_t a = 0; a < in_path.alternatives.size(); ++a) {
        os << "  path " << in_path.path_index << " alt " << a << ": begin=[";
        DescribeActions(in_path.alternatives[a].begin, compiled, os);
        os << "] end=[";
        DescribeActions(in_path.alternatives[a].end, compiled, os);
        os << "]\n";
      }
    }
  }
  return os.str();
}

}  // namespace syneval
