// Abstract syntax for path expressions.
//
// Concrete syntax (Campbell–Habermann 1974, with the extensions the paper surveys):
//
//   path_decl := 'path' expr 'end'
//   expr      := seq (',' seq)*          selection: exactly one branch at a time
//   seq       := item (';' item)*        sequencing: items execute in order, cyclically
//   item      := IDENT                   an operation name
//              | '{' expr '}'            concurrency: a burst of overlapping activations
//              | INT ':' '(' expr ')'    numeric bound [Flon–Habermann]: <= N activations
//              | '[' IDENT ']' item      predicate guard [Andler]: item may start only
//                                        while the named predicate holds
//              | '(' expr ')'
//
// The whole path repeats forever (the "path-end pair" denotes repetition, per the paper).

#ifndef SYNEVAL_PATHEXPR_AST_H_
#define SYNEVAL_PATHEXPR_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace syneval {

struct PathNode {
  enum class Kind {
    kName,        // leaf: operation name
    kSequence,    // children in order, ';'
    kSelection,   // one of children, ','
    kConcurrent,  // '{ child }'
    kBounded,     // 'N : ( child )'
    kGuarded,     // '[ pred ] child'
  };

  Kind kind = Kind::kName;
  std::string name;        // kName: operation; kGuarded: predicate name.
  std::int64_t bound = 0;  // kBounded only.
  std::vector<std::unique_ptr<PathNode>> children;

  // Re-renders the node in concrete syntax (used in diagnostics and reports).
  std::string ToString() const;
};

// One 'path ... end' declaration.
struct PathDecl {
  std::unique_ptr<PathNode> body;
  std::string source;  // Original text, for diagnostics.
};

// Factory helpers (used by tests that build ASTs directly).
std::unique_ptr<PathNode> MakeName(std::string name);
std::unique_ptr<PathNode> MakeSequence(std::vector<std::unique_ptr<PathNode>> children);
std::unique_ptr<PathNode> MakeSelection(std::vector<std::unique_ptr<PathNode>> children);
std::unique_ptr<PathNode> MakeConcurrent(std::unique_ptr<PathNode> child);
std::unique_ptr<PathNode> MakeBounded(std::int64_t bound, std::unique_ptr<PathNode> child);
std::unique_ptr<PathNode> MakeGuarded(std::string predicate, std::unique_ptr<PathNode> child);

}  // namespace syneval

#endif  // SYNEVAL_PATHEXPR_AST_H_
