#include "syneval/pathexpr/parser.h"

#include <cctype>
#include <sstream>
#include <utility>

namespace syneval {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kComma,
    kSemi,
    kColon,
    kLParen,
    kRParen,
    kLBrace,
    kRBrace,
    kLBracket,
    kRBracket,
    kEnd,  // End of input.
  };
  Kind kind = Kind::kEnd;
  std::string text;
  std::int64_t number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token token = current_;
    Advance();
    return token;
  }

 private:
  void Advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = text_[pos_];
    switch (c) {
      case ',':
        current_.kind = Token::Kind::kComma;
        ++pos_;
        return;
      case ';':
        current_.kind = Token::Kind::kSemi;
        ++pos_;
        return;
      case ':':
        current_.kind = Token::Kind::kColon;
        ++pos_;
        return;
      case '(':
        current_.kind = Token::Kind::kLParen;
        ++pos_;
        return;
      case ')':
        current_.kind = Token::Kind::kRParen;
        ++pos_;
        return;
      case '{':
        current_.kind = Token::Kind::kLBrace;
        ++pos_;
        return;
      case '}':
        current_.kind = Token::Kind::kRBrace;
        ++pos_;
        return;
      case '[':
        current_.kind = Token::Kind::kLBracket;
        ++pos_;
        return;
      case ']':
        current_.kind = Token::Kind::kRBracket;
        ++pos_;
        return;
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t start = pos_;
      std::int64_t value = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        value = value * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      current_.kind = Token::Kind::kNumber;
      current_.number = value;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    std::ostringstream os;
    os << "unexpected character '" << c << "' at position " << pos_;
    throw PathSyntaxError(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

[[noreturn]] void Fail(const Token& token, const std::string& expected) {
  std::ostringstream os;
  os << "expected " << expected << " at position " << token.pos;
  if (!token.text.empty()) {
    os << " (found '" << token.text << "')";
  }
  throw PathSyntaxError(os.str());
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  // expr := seq (',' seq)*
  std::unique_ptr<PathNode> ParseExpr() {
    std::vector<std::unique_ptr<PathNode>> branches;
    branches.push_back(ParseSeq());
    while (lexer_.Peek().kind == Token::Kind::kComma) {
      lexer_.Take();
      branches.push_back(ParseSeq());
    }
    if (branches.size() == 1) {
      return std::move(branches.front());
    }
    return MakeSelection(std::move(branches));
  }

  void Expect(Token::Kind kind, const std::string& what) {
    if (lexer_.Peek().kind != kind) {
      Fail(lexer_.Peek(), what);
    }
    lexer_.Take();
  }

  void ExpectKeyword(const std::string& keyword) {
    const Token& token = lexer_.Peek();
    if (token.kind != Token::Kind::kIdent || token.text != keyword) {
      Fail(token, "'" + keyword + "'");
    }
    lexer_.Take();
  }

  bool AtKeyword(const std::string& keyword) const {
    const Token& token = lexer_.Peek();
    return token.kind == Token::Kind::kIdent && token.text == keyword;
  }

  bool AtEnd() const { return lexer_.Peek().kind == Token::Kind::kEnd; }

 private:
  // seq := item (';' item)*
  std::unique_ptr<PathNode> ParseSeq() {
    std::vector<std::unique_ptr<PathNode>> items;
    items.push_back(ParseItem());
    while (lexer_.Peek().kind == Token::Kind::kSemi) {
      lexer_.Take();
      items.push_back(ParseItem());
    }
    if (items.size() == 1) {
      return std::move(items.front());
    }
    return MakeSequence(std::move(items));
  }

  std::unique_ptr<PathNode> ParseItem() {
    const Token& token = lexer_.Peek();
    switch (token.kind) {
      case Token::Kind::kIdent: {
        if (token.text == "end" || token.text == "path") {
          Fail(token, "an operation name");
        }
        return MakeName(lexer_.Take().text);
      }
      case Token::Kind::kLBrace: {
        lexer_.Take();
        auto inner = ParseExpr();
        Expect(Token::Kind::kRBrace, "'}'");
        return MakeConcurrent(std::move(inner));
      }
      case Token::Kind::kLParen: {
        lexer_.Take();
        auto inner = ParseExpr();
        Expect(Token::Kind::kRParen, "')'");
        return inner;
      }
      case Token::Kind::kNumber: {
        const std::int64_t bound = lexer_.Take().number;
        if (bound <= 0) {
          throw PathSyntaxError("numeric bound must be positive");
        }
        Expect(Token::Kind::kColon, "':' after numeric bound");
        Expect(Token::Kind::kLParen, "'(' after numeric bound");
        auto inner = ParseExpr();
        Expect(Token::Kind::kRParen, "')'");
        return MakeBounded(bound, std::move(inner));
      }
      case Token::Kind::kLBracket: {
        lexer_.Take();
        const Token& name = lexer_.Peek();
        if (name.kind != Token::Kind::kIdent) {
          Fail(name, "a predicate name");
        }
        std::string predicate = lexer_.Take().text;
        Expect(Token::Kind::kRBracket, "']'");
        return MakeGuarded(std::move(predicate), ParseItem());
      }
      default:
        Fail(token, "an operation name, '{', '(', '[' or a numeric bound");
    }
  }

  Lexer lexer_;
};

}  // namespace

PathDecl ParsePath(std::string_view text) {
  Parser parser(text);
  parser.ExpectKeyword("path");
  PathDecl decl;
  decl.body = parser.ParseExpr();
  parser.ExpectKeyword("end");
  if (!parser.AtEnd()) {
    throw PathSyntaxError("trailing input after 'end'");
  }
  decl.source = std::string(text);
  return decl;
}

std::vector<PathDecl> ParsePathProgram(std::string_view text) {
  Parser parser(text);
  std::vector<PathDecl> decls;
  while (!parser.AtEnd()) {
    parser.ExpectKeyword("path");
    PathDecl decl;
    decl.body = parser.ParseExpr();
    parser.ExpectKeyword("end");
    decl.source = "path " + decl.body->ToString() + " end";
    decls.push_back(std::move(decl));
  }
  if (decls.empty()) {
    throw PathSyntaxError("no path declarations found");
  }
  return decls;
}

}  // namespace syneval
