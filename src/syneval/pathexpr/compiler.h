// Compiler: path-expression ASTs → per-operation prologue/epilogue action lists.
//
// This is the CH74 translation scheme recast over explicit counters so that the runtime
// can (a) fire an operation's whole prologue atomically, (b) apply the longest-waiting
// selection rule Bloom adds to the mechanism, and (c) support the predicate extension.
//
// Translation, for a node with inherited prologue `pre` and epilogue `post`:
//   name n          : emit alternative {begin: pre, end: post} for operation n
//   e1 ; ... ; ek   : fresh counters T1..T(k-1) = 0; child i inherits
//                     (i == 1 ? pre : [Acquire(T(i-1))],  i == k ? post : [Release(Ti)])
//   e1 , ... , ek   : every child inherits (pre, post) — occurrences accumulate as
//                     alternatives of the same operation
//   { e }           : fresh brace b; child inherits ([BraceEnter(b, pre)],
//                     [BraceExit(b, post)]) — the first activation fires `pre`, the last
//                     completion fires `post`, any number may overlap in between
//   n : ( e )       : fresh counter B = n; child inherits (pre + [Acquire(B)],
//                     [Release(B)] + post) — at most n concurrent activations
//   [p] e           : child inherits (pre + [Guard(p)], post)
//   path body end   : body inherits ([Acquire(S)], [Release(S)]) with fresh S = 1 —
//                     the cyclic repetition — EXCEPT when body is `n:(e)`, in which case
//                     the bound replaces the cycle counter (S = n dissolved into B), the
//                     Flon–Habermann reading that makes `path n:(1:(deposit);
//                     1:(remove)) end` the n-slot bounded buffer.
//
// Epilogues consist only of Release/BraceExit actions, so completing an operation never
// blocks — matching CH74, where epilogues are V operations.

#ifndef SYNEVAL_PATHEXPR_COMPILER_H_
#define SYNEVAL_PATHEXPR_COMPILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "syneval/pathexpr/ast.h"

namespace syneval {

// A primitive state transition. Brace actions carry the nested actions they fire when
// the activation count crosses zero (entering the first / leaving the last activation).
struct PathAction {
  enum class Kind {
    kAcquire,     // Requires counters[index] > 0; decrements.
    kRelease,     // Increments counters[index].
    kBraceEnter,  // Requires braces[index] > 0 or `nested` fireable; increments,
                  // firing `nested` when the count was zero.
    kBraceExit,   // Decrements braces[index]; fires `nested` when the count reaches zero.
    kGuard,       // Requires predicate `index` to currently hold; no state change.
  };

  Kind kind = Kind::kAcquire;
  int index = 0;
  std::vector<PathAction> nested;
};

// Mutable synchronization state of one controller instance.
struct PathState {
  std::vector<std::int64_t> counters;
  std::vector<std::int64_t> braces;
};

// One way an operation occurrence can fire within one path.
struct PathAlternative {
  std::vector<PathAction> begin;
  std::vector<PathAction> end;
};

// All occurrences of one operation within one path.
struct OpInPath {
  int path_index = 0;
  std::vector<PathAlternative> alternatives;  // Declaration order.
};

// The compiled system for a whole path program.
struct CompiledPaths {
  std::vector<std::string> path_sources;
  std::vector<std::int64_t> counter_init;
  std::vector<std::string> counter_labels;
  std::vector<std::string> brace_labels;
  std::vector<std::string> predicate_names;              // Index = Guard action index.
  std::map<std::string, std::vector<OpInPath>> ops;      // Operation → per-path data.

  PathState InitialState() const;
  int CounterIndex(const std::string& label) const;      // -1 when unknown.
  int BraceIndex(const std::string& label) const;        // -1 when unknown.
};

// Compiles a parsed path program. Throws PathSyntaxError on semantic errors
// (none currently defined beyond parsing).
CompiledPaths CompilePaths(const std::vector<PathDecl>& decls);

// Renders the compiled action tables (diagnostics; also used by the expressiveness
// report to show how indirect a mechanism's handling of an information type is).
std::string DescribeCompiledPaths(const CompiledPaths& compiled);

}  // namespace syneval

#endif  // SYNEVAL_PATHEXPR_COMPILER_H_
