// PathController: the runtime that enforces compiled path expressions.
//
// An operation invocation brackets its body with Begin/End (see OpRegion). Begin fires
// the operation's whole prologue atomically — across every path that mentions the
// operation — or blocks until it can. End fires the epilogues (never blocks) and then
// re-evaluates all blocked invocations.
//
// Selection rule: when several blocked invocations become eligible, the controller
// admits them in arrival order ("the selection operator always chooses the process that
// has been waiting longest") — the assumption Bloom adds to CH74 because "it is
// necessary for many problems, including some that appear in that paper". The
// alternative kArbitrary policy exists to measure exactly which problems break without
// it (DESIGN.md decision 3).
//
// Predicates (the Andler extension) are registered host callbacks; they must be pure
// functions of state that only changes inside path-controlled operations — if external
// state changes, call Reevaluate().

#ifndef SYNEVAL_PATHEXPR_CONTROLLER_H_
#define SYNEVAL_PATHEXPR_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "syneval/pathexpr/compiler.h"
#include "syneval/runtime/runtime.h"

namespace syneval {

class PathController {
 public:
  enum class SelectionPolicy {
    kLongestWaiting,  // Bloom's assumption: FIFO among eligible blocked invocations.
    kArbitrary,       // Seeded-random order: raw CH74, no fairness guarantee.
  };

  struct Options {
    SelectionPolicy policy = SelectionPolicy::kLongestWaiting;
    std::uint64_t arbitrary_seed = 1;
    // When false, Begin on an operation not mentioned in any path is an error; when
    // true it is unconstrained (CH74 leaves unmentioned operations unconstrained).
    bool allow_unconstrained_ops = true;
  };

  // Token returned by Begin: records which occurrence (alternative) the invocation
  // matched in each path, so End fires the corresponding epilogues.
  struct Token {
    bool constrained = false;
    std::vector<int> chosen_alternatives;  // Parallel to the op's OpInPath list.
    std::uint64_t admit_ns = 0;            // NowNanos at admission (telemetry; 0 = off).
  };

  struct OpStats {
    std::uint64_t begins = 0;
    std::uint64_t blocked_begins = 0;  // Begins that had to wait at least once.
  };

  // Parses, compiles and installs `program` (one or more "path ... end" declarations).
  // Throws PathSyntaxError on malformed input.
  PathController(Runtime& runtime, const std::string& program);
  PathController(Runtime& runtime, const std::string& program, Options options);
  PathController(Runtime& runtime, CompiledPaths compiled, Options options);

  PathController(const PathController&) = delete;
  PathController& operator=(const PathController&) = delete;

  // Registers the host predicate backing `[name]` guards. Must be called before any
  // guarded operation begins.
  void RegisterPredicate(const std::string& name, std::function<bool()> predicate);

  // Trace hooks, executed under the controller lock so that the recorded order agrees
  // with the admission order (see the instrumentation contract in trace/recorder.h).
  // on_admit of a blocked invocation runs in the *granting* thread.
  struct Hooks {
    std::function<void()> on_arrive;   // Request visible to the controller.
    std::function<void()> on_admit;    // Prologues fired; operation admitted.
    std::function<void()> on_release;  // Epilogues about to fire.
  };

  // Blocks until the operation may start, then fires its prologues. The returned token
  // must be passed to the matching End.
  Token Begin(const std::string& op);
  Token Begin(const std::string& op, const Hooks& hooks);

  // Fires the operation's epilogues and re-evaluates blocked invocations.
  void End(const std::string& op, const Token& token);
  void End(const std::string& op, const Token& token, const Hooks& hooks);

  // Re-evaluates blocked invocations after external predicate state changed.
  void Reevaluate();

  // Introspection (tests, reports) -----------------------------------------------------
  bool CanBeginNow(const std::string& op) const;
  std::int64_t CounterValue(const std::string& label) const;
  std::int64_t BraceCount(const std::string& label) const;
  int WaitingCount() const;

  // True when the controller is quiescent and back at the compiled initial marking:
  // all counters at their initial values, all brace activations zero, nobody waiting.
  // Every complete workload must restore this (the repetition invariant of path-end).
  bool AtInitialState() const;
  OpStats StatsFor(const std::string& op) const;
  const CompiledPaths& compiled() const { return compiled_; }
  std::string DescribeState() const;

  // RAII operation bracket. The optional hooks are used by instrumented solutions.
  class OpRegion {
   public:
    OpRegion(PathController& controller, std::string op)
        : controller_(controller), op_(std::move(op)), token_(controller_.Begin(op_)) {}
    OpRegion(PathController& controller, std::string op, Hooks hooks)
        : controller_(controller),
          op_(std::move(op)),
          hooks_(std::move(hooks)),
          token_(controller_.Begin(op_, hooks_)) {}
    ~OpRegion() { controller_.End(op_, token_, hooks_); }

    OpRegion(const OpRegion&) = delete;
    OpRegion& operator=(const OpRegion&) = delete;

   private:
    PathController& controller_;
    std::string op_;
    Hooks hooks_;
    Token token_;
  };

 private:
  struct Waiter;

  // Attempts to fire `op`'s prologues on `state`; on success mutates `state` and
  // returns the token. Consults predicates. Caller holds mu_.
  std::optional<Token> TryBeginLocked(const std::string& op, PathState& state) const;

  // Applies one action (recursively); returns false (state partially mutated — callers
  // work on copies) when a requirement fails.
  bool ApplyAction(const PathAction& action, PathState& state) const;
  bool ApplyAll(const std::vector<PathAction>& actions, PathState& state) const;

  // Admits every eligible blocked invocation per the selection policy; wakes them.
  void GrantEligibleLocked();

  Runtime& runtime_;
  AnomalyDetector* det_ = nullptr;  // From runtime_.anomaly_detector(); may be null.
  MechanismStats* tel_ = nullptr;   // "path_controller" bundle; null when not attached.
  CompiledPaths compiled_;
  Options options_;
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  PathState state_;
  std::deque<Waiter*> waiters_;  // Arrival order.
  std::uint64_t arrival_counter_ = 0;
  std::vector<std::function<bool()>> predicates_;
  std::map<std::string, OpStats> stats_;
  mutable std::mt19937_64 arbitrary_rng_;
};

}  // namespace syneval

#endif  // SYNEVAL_PATHEXPR_CONTROLLER_H_
