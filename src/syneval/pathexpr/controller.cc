#include "syneval/pathexpr/controller.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/pathexpr/parser.h"
#include "syneval/telemetry/instrument.h"

namespace syneval {

struct PathController::Waiter {
  std::string op;
  bool granted = false;
  Token token;
  std::uint64_t arrival = 0;
  std::function<void()> on_admit;  // Runs, under mu_, in the granting thread.
  std::uint64_t wait_start = 0;    // NowNanos when the wait began (telemetry).
};

PathController::PathController(Runtime& runtime, const std::string& program)
    : PathController(runtime, CompilePaths(ParsePathProgram(program)), Options()) {}

PathController::PathController(Runtime& runtime, const std::string& program, Options options)
    : PathController(runtime, CompilePaths(ParsePathProgram(program)), options) {}

PathController::PathController(Runtime& runtime, CompiledPaths compiled, Options options)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "path_controller")),
      compiled_(std::move(compiled)),
      options_(options),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      state_(compiled_.InitialState()),
      predicates_(compiled_.predicate_names.size()),
      arbitrary_rng_(options.arbitrary_seed) {
  if (det_ != nullptr) {
    // No explicit holder exists (admission is a marking change, not an ownership
    // transfer), so the controller registers as a condition-like queue.
    det_->RegisterResource(this, ResourceKind::kQueue, "PathController");
  }
}

void PathController::RegisterPredicate(const std::string& name,
                                       std::function<bool()> predicate) {
  for (std::size_t i = 0; i < compiled_.predicate_names.size(); ++i) {
    if (compiled_.predicate_names[i] == name) {
      predicates_[i] = std::move(predicate);
      return;
    }
  }
  throw std::invalid_argument("predicate '" + name + "' does not occur in any path");
}

bool PathController::ApplyAction(const PathAction& action, PathState& state) const {
  switch (action.kind) {
    case PathAction::Kind::kAcquire:
      if (state.counters[action.index] <= 0) {
        return false;
      }
      --state.counters[action.index];
      return true;
    case PathAction::Kind::kRelease:
      ++state.counters[action.index];
      return true;
    case PathAction::Kind::kBraceEnter:
      if (state.braces[action.index] == 0) {
        if (!ApplyAll(action.nested, state)) {
          return false;
        }
      }
      ++state.braces[action.index];
      return true;
    case PathAction::Kind::kBraceExit:
      --state.braces[action.index];
      if (state.braces[action.index] == 0) {
        // Epilogue actions (releases / outer brace exits) always succeed.
        const bool ok = ApplyAll(action.nested, state);
        assert(ok && "path epilogue failed to fire");
        (void)ok;
      }
      return true;
    case PathAction::Kind::kGuard: {
      const auto& predicate = predicates_[action.index];
      assert(predicate && "guarded operation began before RegisterPredicate");
      return predicate && predicate();
    }
  }
  return false;
}

bool PathController::ApplyAll(const std::vector<PathAction>& actions, PathState& state) const {
  for (const PathAction& action : actions) {
    if (!ApplyAction(action, state)) {
      return false;
    }
  }
  return true;
}

std::optional<PathController::Token> PathController::TryBeginLocked(const std::string& op,
                                                                    PathState& state) const {
  const auto it = compiled_.ops.find(op);
  assert(it != compiled_.ops.end());
  PathState working = state;
  Token token;
  token.constrained = true;
  for (const OpInPath& in_path : it->second) {
    bool fired = false;
    for (std::size_t alt = 0; alt < in_path.alternatives.size(); ++alt) {
      PathState trial = working;
      if (ApplyAll(in_path.alternatives[alt].begin, trial)) {
        working = std::move(trial);
        token.chosen_alternatives.push_back(static_cast<int>(alt));
        fired = true;
        break;
      }
    }
    if (!fired) {
      return std::nullopt;
    }
  }
  state = std::move(working);
  return token;
}

PathController::Token PathController::Begin(const std::string& op) {
  return Begin(op, Hooks{});
}

PathController::Token PathController::Begin(const std::string& op, const Hooks& hooks) {
  RtLock lock(*mu_);
  if (compiled_.ops.find(op) == compiled_.ops.end()) {
    if (!options_.allow_unconstrained_ops) {
      throw std::invalid_argument("operation '" + op + "' is not mentioned in any path");
    }
    if (hooks.on_arrive) {
      hooks.on_arrive();
    }
    if (hooks.on_admit) {
      hooks.on_admit();
    }
    return Token{};  // Unconstrained.
  }
  if (hooks.on_arrive) {
    hooks.on_arrive();
  }
  OpStats& stats = stats_[op];
  ++stats.begins;
  if (auto token = TryBeginLocked(op, state_)) {
    if (tel_ != nullptr) {
      tel_->wait.Record(0);  // Prologues fired immediately.
      tel_->admissions.Add(1);
      token->admit_ns = runtime_.NowNanos();
    }
    if (hooks.on_admit) {
      hooks.on_admit();
    }
    // A successful begin can enable blocked peers (brace entry), so re-evaluate.
    GrantEligibleLocked();
    return *token;
  }
  ++stats.blocked_begins;
  Waiter self;
  self.op = op;
  self.arrival = ++arrival_counter_;
  self.on_admit = hooks.on_admit;
  self.wait_start = TelemetryNow(tel_, runtime_);
  waiters_.push_back(&self);
  if (tel_ != nullptr) {
    tel_->queue_depth.Set(static_cast<std::int64_t>(waiters_.size()));
  }
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (det_ != nullptr) {
    det_->OnBlock(tid, this);
  }
  while (!self.granted) {
    cv_->Wait(*mu_);
    if (tel_ != nullptr) {
      tel_->wakeups.Add(1);
    }
  }
  if (det_ != nullptr) {
    det_->OnWake(tid, this);
  }
  return self.token;
}

void PathController::End(const std::string& op, const Token& token) {
  End(op, token, Hooks{});
}

void PathController::End(const std::string& op, const Token& token, const Hooks& hooks) {
  if (runtime_.Aborting()) {
    return;  // Teardown unwinding (OpRegion destructor): do not fire the epilogue.
  }
  if (!token.constrained) {
    if (hooks.on_release) {
      RtLock lock(*mu_);
      hooks.on_release();
    }
    return;
  }
  RtLock lock(*mu_);
  if (hooks.on_release) {
    hooks.on_release();
  }
  if (tel_ != nullptr && token.admit_ns != 0) {
    tel_->hold.Record(TelemetryElapsed(token.admit_ns, runtime_.NowNanos()));
  }
  const auto it = compiled_.ops.find(op);
  assert(it != compiled_.ops.end());
  const std::vector<OpInPath>& paths = it->second;
  assert(token.chosen_alternatives.size() == paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const PathAlternative& alternative =
        paths[i].alternatives[static_cast<std::size_t>(token.chosen_alternatives[i])];
    const bool ok = ApplyAll(alternative.end, state_);
    assert(ok && "path epilogue failed to fire");
    (void)ok;
  }
  GrantEligibleLocked();
}

void PathController::Reevaluate() {
  RtLock lock(*mu_);
  GrantEligibleLocked();
}

void PathController::GrantEligibleLocked() {
  bool granted_any = false;
  bool progress = true;
  while (progress) {
    progress = false;
    // Evaluation order embodies the selection policy.
    std::vector<std::size_t> order(waiters_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    if (options_.policy == SelectionPolicy::kLongestWaiting) {
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return waiters_[a]->arrival < waiters_[b]->arrival;
      });
    } else {
      std::shuffle(order.begin(), order.end(), arbitrary_rng_);
    }
    for (std::size_t index : order) {
      Waiter* waiter = waiters_[index];
      if (auto token = TryBeginLocked(waiter->op, state_)) {
        waiter->token = *token;
        if (tel_ != nullptr) {
          const std::uint64_t now = runtime_.NowNanos();
          // An epilogue enabling a blocked invocation is the path controller's
          // implicit signal.
          tel_->signals.Add(1);
          tel_->wait.Record(TelemetryElapsed(waiter->wait_start, now));
          tel_->admissions.Add(1);
          waiter->token.admit_ns = now;
        }
        if (waiter->on_admit) {
          waiter->on_admit();
        }
        waiter->granted = true;
        waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(index));
        if (tel_ != nullptr) {
          tel_->queue_depth.Set(static_cast<std::int64_t>(waiters_.size()));
        }
        granted_any = true;
        progress = true;
        break;  // Indices shifted; rebuild the order and rescan.
      }
    }
  }
  if (granted_any) {
    cv_->NotifyAll();
  }
}

bool PathController::CanBeginNow(const std::string& op) const {
  RtLock lock(*mu_);
  if (compiled_.ops.find(op) == compiled_.ops.end()) {
    return options_.allow_unconstrained_ops;
  }
  PathState copy = state_;
  return TryBeginLocked(op, copy).has_value();
}

std::int64_t PathController::CounterValue(const std::string& label) const {
  RtLock lock(*mu_);
  const int index = compiled_.CounterIndex(label);
  assert(index >= 0 && "unknown counter label");
  return state_.counters[static_cast<std::size_t>(index)];
}

std::int64_t PathController::BraceCount(const std::string& label) const {
  RtLock lock(*mu_);
  const int index = compiled_.BraceIndex(label);
  assert(index >= 0 && "unknown brace label");
  return state_.braces[static_cast<std::size_t>(index)];
}

int PathController::WaitingCount() const {
  RtLock lock(*mu_);
  return static_cast<int>(waiters_.size());
}

bool PathController::AtInitialState() const {
  RtLock lock(*mu_);
  if (!waiters_.empty() || state_.counters != compiled_.counter_init) {
    return false;
  }
  for (const std::int64_t count : state_.braces) {
    if (count != 0) {
      return false;
    }
  }
  return true;
}

PathController::OpStats PathController::StatsFor(const std::string& op) const {
  RtLock lock(*mu_);
  const auto it = stats_.find(op);
  return it == stats_.end() ? OpStats{} : it->second;
}

std::string PathController::DescribeState() const {
  RtLock lock(*mu_);
  std::ostringstream os;
  os << "counters:";
  for (std::size_t i = 0; i < state_.counters.size(); ++i) {
    os << " " << compiled_.counter_labels[i] << "=" << state_.counters[i];
  }
  os << " braces:";
  for (std::size_t i = 0; i < state_.braces.size(); ++i) {
    os << " " << compiled_.brace_labels[i] << "=" << state_.braces[i];
  }
  os << " waiting:";
  for (const Waiter* waiter : waiters_) {
    os << " " << waiter->op;
  }
  return os.str();
}

}  // namespace syneval
