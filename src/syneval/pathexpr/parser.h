// Parser for path-expression declarations.

#ifndef SYNEVAL_PATHEXPR_PARSER_H_
#define SYNEVAL_PATHEXPR_PARSER_H_

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "syneval/pathexpr/ast.h"

namespace syneval {

// Thrown on malformed path text; the message includes position and expectation.
class PathSyntaxError : public std::runtime_error {
 public:
  explicit PathSyntaxError(const std::string& message) : std::runtime_error(message) {}
};

// Parses one "path <expr> end" declaration.
PathDecl ParsePath(std::string_view text);

// Parses a whole specification: one or more "path ... end" declarations separated by
// whitespace (the multi-path form used by Figures 1 and 2 of the paper).
std::vector<PathDecl> ParsePathProgram(std::string_view text);

}  // namespace syneval

#endif  // SYNEVAL_PATHEXPR_PARSER_H_
