#include "syneval/pathexpr/ast.h"

#include <sstream>
#include <utility>

namespace syneval {

namespace {

void Render(const PathNode& node, std::ostringstream& os) {
  switch (node.kind) {
    case PathNode::Kind::kName:
      os << node.name;
      break;
    case PathNode::Kind::kSequence:
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) {
          os << "; ";
        }
        const PathNode& child = *node.children[i];
        const bool parens = child.kind == PathNode::Kind::kSelection;
        if (parens) {
          os << "(";
        }
        Render(child, os);
        if (parens) {
          os << ")";
        }
      }
      break;
    case PathNode::Kind::kSelection:
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        Render(*node.children[i], os);
      }
      break;
    case PathNode::Kind::kConcurrent:
      os << "{ ";
      Render(*node.children[0], os);
      os << " }";
      break;
    case PathNode::Kind::kBounded:
      os << node.bound << ":(";
      Render(*node.children[0], os);
      os << ")";
      break;
    case PathNode::Kind::kGuarded:
      os << "[" << node.name << "] ";
      Render(*node.children[0], os);
      break;
  }
}

}  // namespace

std::string PathNode::ToString() const {
  std::ostringstream os;
  Render(*this, os);
  return os.str();
}

std::unique_ptr<PathNode> MakeName(std::string name) {
  auto node = std::make_unique<PathNode>();
  node->kind = PathNode::Kind::kName;
  node->name = std::move(name);
  return node;
}

std::unique_ptr<PathNode> MakeSequence(std::vector<std::unique_ptr<PathNode>> children) {
  auto node = std::make_unique<PathNode>();
  node->kind = PathNode::Kind::kSequence;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<PathNode> MakeSelection(std::vector<std::unique_ptr<PathNode>> children) {
  auto node = std::make_unique<PathNode>();
  node->kind = PathNode::Kind::kSelection;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<PathNode> MakeConcurrent(std::unique_ptr<PathNode> child) {
  auto node = std::make_unique<PathNode>();
  node->kind = PathNode::Kind::kConcurrent;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PathNode> MakeBounded(std::int64_t bound, std::unique_ptr<PathNode> child) {
  auto node = std::make_unique<PathNode>();
  node->kind = PathNode::Kind::kBounded;
  node->bound = bound;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PathNode> MakeGuarded(std::string predicate, std::unique_ptr<PathNode> child) {
  auto node = std::make_unique<PathNode>();
  node->kind = PathNode::Kind::kGuarded;
  node->name = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

}  // namespace syneval
